// Package serve is the multi-tenant transform job server behind
// cmd/fouridxd: a long-running HTTP/JSON service accepting concurrent
// four-index transform requests and running them against the shared
// process resources — one BLAS worker pool, one aggregate-memory
// budget — that a single machine actually has.
//
// The design is built from the repository's existing robustness
// machinery rather than alongside it:
//
//   - Admission control is built on the paper's data-movement
//     machinery: lb.ConfigMinMemory (Section 5) is the analytic floor
//     that fast-rejects jobs no tiling could ever fit, and the binding
//     reservation is an exact cost-mode dry run of the job's schedule —
//     the simulator performs the same allocation sequence as execution,
//     so the priced peak is the run's peak, not an estimate. The sum of
//     admitted reservations never exceeds Config.MemBudgetBytes, and
//     each reservation is handed to the job as its
//     Options.GlobalMemBytes so the GA runtime enforces at run time
//     what admission promised at submit time.
//
//   - Backpressure is explicit: a full queue or an exhausted per-tenant
//     quota rejects with 429 and a Retry-After header; a job that could
//     never fit the budget rejects with 422 immediately.
//
//   - Cancellation is the cooperative fourindex.RunContext path: every
//     job runs under its own context, deadlines and DELETE map to
//     context cancellation, and a canceled schedule stops at its next
//     l-slab or stage boundary — exactly where its checkpoints live.
//
//   - Graceful drain is checkpoint-restart (internal/faults) pointed at
//     disk: Drain cancels running jobs, their schedules leave a
//     FileCheckpoint of the last completed slab, the queue is persisted
//     to jobs.json, and a restarted server resumes every interrupted
//     job from its checkpoint, reproducing the uninterrupted result
//     bitwise (the drain chaos test pins this).
//
// Job progress streams to clients through the trace subsystem's
// coarse progress listener (slab marks, restarts, phase spans), and
// GET /metrics exposes per-tenant counters next to the admission
// gauges. The package deliberately reads no wall clock: scheduling is
// event-driven, deadlines use context timers, and Retry-After is a
// fixed hint, keeping the determinism analyzer's discipline intact.
package serve

import (
	"context"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"sync"

	"fourindex/internal/blas"
	"fourindex/internal/cluster"
	"fourindex/internal/trace"
)

// Config parametrises a Server.
type Config struct {
	// MemBudgetBytes is the server-wide aggregate-memory budget jobs
	// are admitted against. Required (> 0): without it admission
	// control has nothing to enforce.
	MemBudgetBytes int64
	// StateDir is where the server persists its queue (jobs.json) and
	// per-job checkpoint directories (ckpt/<jobID>/). Required: drain
	// and resume are not optional behaviours of this server.
	StateDir string
	// Procs is the default per-job parallel process count (0 = 4).
	Procs int
	// Workers sizes the process-wide BLAS worker pool, set once at
	// construction (0 = runtime.NumCPU()). Concurrent jobs share this
	// pool instead of each fanning out their own goroutines.
	Workers int
	// MaxRunning caps concurrently executing jobs (0 = 2).
	MaxRunning int
	// MaxQueue caps jobs waiting for admission across all tenants
	// (0 = 64). Submits beyond it are rejected with 429.
	MaxQueue int
	// TenantQuota caps queued-or-running jobs per tenant (0 = 8).
	TenantQuota int
	// Machine names the cluster model ("A" | "B" | "C", 0 = "B") used
	// for cost-mode simulation and "auto" scheme planning.
	Machine string
}

// withDefaults validates and fills defaults.
func (c Config) withDefaults() (Config, error) {
	if c.MemBudgetBytes <= 0 {
		return c, fmt.Errorf("serve: config needs a positive MemBudgetBytes")
	}
	if c.StateDir == "" {
		return c, fmt.Errorf("serve: config needs a StateDir for drain/resume state")
	}
	if c.Procs <= 0 {
		c.Procs = 4
	}
	if c.Workers <= 0 {
		c.Workers = runtime.NumCPU()
	}
	if c.MaxRunning <= 0 {
		c.MaxRunning = 2
	}
	if c.MaxQueue <= 0 {
		c.MaxQueue = 64
	}
	if c.TenantQuota <= 0 {
		c.TenantQuota = 8
	}
	if c.Machine == "" {
		c.Machine = "B"
	}
	return c, nil
}

// Server is the transform job service: admission control, a priority
// queue with tenant quotas, a bounded pool of running jobs, progress
// fan-out and drain/resume. Construct with New, expose Handler over
// HTTP, stop with Drain (graceful) or Close (abrupt).
type Server struct {
	cfg Config
	run *cluster.Run // machine model for cost mode and "auto"

	baseCtx context.Context // parent of every job context
	stop    context.CancelFunc
	wake    chan struct{}  // nudges the dispatch loop
	wg      sync.WaitGroup // running jobs + dispatch loop

	events *eventHub

	// progressHook, when set (tests only, before any submit), is invoked
	// synchronously on the job's goroutine after each published progress
	// event; blocking in it holds the schedule at that boundary, which
	// is how the drain test pins "cancellation arrives mid-run" without
	// timing assumptions.
	progressHook func(jobID string, ev trace.ProgressEvent)

	mu       sync.Mutex
	jobs     map[string]*Job // every job ever seen, by ID
	queue    *jobQueue
	adm      *admission
	nextSeq    int
	running    int
	draining   bool
	tenants    map[string]*tenantCounters
	persistErr error // last failed background state write, for /healthz
}

// New builds a Server from cfg, loading any persisted queue from a
// previous (drained) process in cfg.StateDir and sizing the shared
// BLAS worker pool. The dispatch loop starts immediately.
func New(cfg Config) (*Server, error) {
	cfg, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}
	machine, err := cluster.ByName(cfg.Machine)
	if err != nil {
		return nil, fmt.Errorf("serve: %w", err)
	}
	run, err := machine.Configure(cfg.Procs, 0)
	if err != nil {
		return nil, fmt.Errorf("serve: %w", err)
	}
	if err := os.MkdirAll(filepath.Join(cfg.StateDir, "ckpt"), 0o755); err != nil {
		return nil, fmt.Errorf("serve: state dir: %w", err)
	}
	blas.SetWorkers(cfg.Workers)

	ctx, cancel := context.WithCancel(context.Background())
	s := &Server{
		cfg:     cfg,
		run:     &run,
		baseCtx: ctx,
		stop:    cancel,
		wake:    make(chan struct{}, 1),
		events:  newEventHub(),
		jobs:    make(map[string]*Job),
		queue:   newJobQueue(cfg.MaxQueue, cfg.TenantQuota),
		adm:     &admission{budget: cfg.MemBudgetBytes},
		tenants: make(map[string]*tenantCounters),
	}
	if err := s.loadState(); err != nil {
		cancel()
		return nil, err
	}
	s.wg.Add(1)
	go s.dispatchLoop()
	s.nudge()
	return s, nil
}

// nudge wakes the dispatch loop without blocking.
func (s *Server) nudge() {
	select {
	case s.wake <- struct{}{}:
	default:
	}
}

// dispatchLoop launches queued jobs whenever capacity frees up, until
// the server context is canceled.
func (s *Server) dispatchLoop() {
	defer s.wg.Done()
	for {
		select {
		case <-s.baseCtx.Done():
			return
		case <-s.wake:
			s.dispatch()
		}
	}
}

// dispatch starts as many queued jobs as slots and budget allow,
// highest priority first. A job whose reservation does not fit the
// remaining budget is skipped (first-fit by priority): smaller or
// later jobs may still run, and the skipped job is retried on the next
// release.
func (s *Server) dispatch() {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.draining {
		return
	}
	for s.running < s.cfg.MaxRunning {
		j := s.queue.popWhere(func(j *Job) bool {
			return s.adm.tryReserve(j.plan.reservedBytes)
		})
		if j == nil {
			return
		}
		j.State = StateRunning
		s.running++
		s.wg.Add(1)
		go s.runJob(j)
	}
}

// Close abandons the server without draining: job contexts are
// canceled, but the queue is not persisted and no state is written
// beyond the checkpoints schedules already saved. Tests use it;
// production shutdown is Drain.
func (s *Server) Close() {
	s.stop()
	s.wg.Wait()
}
