package serve

import "context"

// Drain performs graceful shutdown: stop admitting, cancel every
// running job's context so its schedule stops at the next l-slab or
// stage boundary (leaving a checkpoint of everything completed so
// far), wait for the jobs to unwind, then persist the job table. A
// server restarted on the same StateDir re-queues the interrupted jobs
// and resumes each from its checkpoint, producing output bitwise
// identical to an uninterrupted run.
//
// ctx bounds the wait: if it expires first, Drain returns ctx.Err()
// without persisting a final snapshot — the per-transition snapshots
// already on disk still allow a coarse recovery. Drain is idempotent;
// concurrent calls share the same shutdown.
func (s *Server) Drain(ctx context.Context) error {
	s.mu.Lock()
	alreadyDraining := s.draining
	s.draining = true
	s.mu.Unlock()

	// Canceling the server context cancels every job context derived
	// from it AND stops the dispatch loop. Schedules observe the
	// cancellation at their next checkpoint boundary and return
	// ErrCanceled, which runJob (seeing s.draining) records as
	// StateInterrupted with the checkpoint kept.
	s.stop()

	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-done:
	}
	if alreadyDraining {
		// The first Drain call persists; later callers just waited.
		return nil
	}

	s.mu.Lock()
	defer s.mu.Unlock()
	return s.persistLocked()
}
