package serve

import (
	"net/http"
	"net/http/httptest"
	"testing"

	"fourindex/internal/lb/chain"
)

// chainJobSpec builds a small valid chain job.
func chainJobSpec(t *testing.T, tenant string) JobSpec {
	t.Helper()
	c, err := chain.Rect(32, 4)
	if err != nil {
		t.Fatalf("Rect: %v", err)
	}
	return JobSpec{Tenant: tenant, Chain: c}
}

// TestChainJobEndToEnd submits a chain-analysis job over HTTP and
// checks it runs to done with the engine's report, priced by the
// derived minimum-memory floor.
func TestChainJobEndToEnd(t *testing.T) {
	s := newTestServer(t, testConfig(t))
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	resp, st := postJob(t, ts, chainJobSpec(t, "chem"))
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit chain job: status %d, want 202", resp.StatusCode)
	}
	if st.Chain != "rect" {
		t.Errorf("status chain = %q, want rect", st.Chain)
	}
	if st.ReservedBytes <= 0 {
		t.Errorf("chain job reserved %d bytes, want > 0 (priced by derived floor)", st.ReservedBytes)
	}

	final := waitJob(t, s, st.ID)
	if final.State != StateDone {
		t.Fatalf("chain job state %s (%s), want done", final.State, final.Error)
	}
	rep := final.Result.ChainReport
	if rep == nil {
		t.Fatal("done chain job has no ChainReport")
	}
	if rep.Chain != "rect" || rep.Ops != 2 || len(rep.Rankings) != 2 {
		t.Errorf("report %s/%d ops/%d rankings, want rect/2/2", rep.Chain, rep.Ops, len(rep.Rankings))
	}
	// CapacityElements defaulted to the server budget in elements, so
	// the report must be priced and this small chain must fit.
	if rep.CapacityElements != testConfig(t).MemBudgetBytes/8 {
		// testConfig uses a fresh TempDir per call but a fixed budget.
		t.Errorf("report capacity %d, want budget/8", rep.CapacityElements)
	}
	if rep.BestConfig == "" {
		t.Error("report picked no feasible config at the server budget")
	}
}

// TestChainJobRejections exercises the hardened error paths: malformed
// chains and capacities must come back as 422 semantic rejections (not
// panics, not 500s), and over-budget chains as 422 via ErrOverBudget.
func TestChainJobRejections(t *testing.T) {
	s := newTestServer(t, testConfig(t))
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	rect, err := chain.Rect(32, 4)
	if err != nil {
		t.Fatalf("Rect: %v", err)
	}
	huge, err := chain.FourIndex(368, 8) // floor ~5.6 GB >> 64 MB test budget
	if err != nil {
		t.Fatalf("FourIndex: %v", err)
	}
	malformed := &chain.Chain{
		Name:       "bad",
		Boundaries: []chain.Tensor{{Name: "A", Elements: -1}, {Name: "B", Elements: 4}},
		Ops:        []chain.Contraction{{Name: "op", Rows: 2, Red: 2, Prod: 2, OperandElements: 4}},
	}
	wrongShape := &chain.Chain{
		Name:       "short",
		Boundaries: []chain.Tensor{{Name: "A", Elements: 16}},
		Ops:        []chain.Contraction{{Name: "op", Rows: 4, Red: 4, Prod: 4, OperandElements: 16}},
	}

	cases := []struct {
		name string
		spec JobSpec
		want int
	}{
		{"malformed chain", JobSpec{Tenant: "a", Chain: malformed}, http.StatusUnprocessableEntity},
		{"wrong boundary count", JobSpec{Tenant: "a", Chain: wrongShape}, http.StatusUnprocessableEntity},
		{"negative capacity", JobSpec{Tenant: "a", Chain: rect, CapacityElements: -5}, http.StatusUnprocessableEntity},
		{"over budget", JobSpec{Tenant: "a", Chain: huge}, http.StatusUnprocessableEntity},
		{"chain plus n", JobSpec{Tenant: "a", N: 8, Chain: rect}, http.StatusBadRequest},
		{"chain plus scheme", JobSpec{Tenant: "a", Scheme: "unfused", Chain: rect}, http.StatusBadRequest},
		{"capacity without chain", JobSpec{Tenant: "a", N: 8, CapacityElements: 100}, http.StatusBadRequest},
		{"no tenant", JobSpec{Chain: rect}, http.StatusBadRequest},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			resp, _ := postJob(t, ts, tc.spec)
			if resp.StatusCode != tc.want {
				t.Errorf("status %d, want %d", resp.StatusCode, tc.want)
			}
		})
	}
}

// TestChainJobPersistRoundTrip pins that a chain job survives the
// persist/restore cycle with its plan intact.
func TestChainJobPersistRoundTrip(t *testing.T) {
	c, err := chain.MP2(4, 12)
	if err != nil {
		t.Fatalf("MP2: %v", err)
	}
	j := &Job{
		ID:    "j3",
		Seq:   3,
		Spec:  JobSpec{Tenant: "a", Chain: c, CapacityElements: 9000},
		State: StateQueued,
		plan: jobPlan{
			chainSpec:        c,
			capacityElements: 9000,
			reservedBytes:    1 << 20,
			minBytes:         1 << 20,
		},
	}
	got, err := persistJob(j).restore()
	if err != nil {
		t.Fatalf("restore: %v", err)
	}
	if got.plan.chainSpec == nil || got.plan.chainSpec.Name != "mp2" {
		t.Fatalf("restored plan lost the chain: %+v", got.plan)
	}
	if got.plan.capacityElements != 9000 || got.plan.reservedBytes != 1<<20 {
		t.Errorf("restored plan = cap %d reserved %d, want 9000, %d",
			got.plan.capacityElements, got.plan.reservedBytes, 1<<20)
	}

	// A tampered state file with a broken chain must fail restore, not
	// panic later in the engine.
	pj := persistJob(j)
	pj.Plan.Chain = &chain.Chain{Name: "evil"}
	if _, err := pj.restore(); err == nil {
		t.Error("restore accepted a chain with no ops")
	}
}
