package chem

import (
	"math"
	"testing"

	"fourindex/internal/sym"
)

func mp2Fixture(t *testing.T, n int) (*sym.PackedC, []float64) {
	t.Helper()
	sp := MustSpec(n, 1, 5)
	c := sym.NewPackedC(n)
	// Symmetric deterministic integrals.
	for a := 0; a < n; a++ {
		for b := 0; b <= a; b++ {
			for g := 0; g < n; g++ {
				for d := 0; d <= g; d++ {
					c.Add(sp.ComputeA(a, b, g, d), a, b, g, d)
				}
			}
		}
	}
	e := make([]float64, n)
	for p := 0; p < n; p++ {
		e[p] = sp.OrbitalEnergy(p)
	}
	return c, e
}

// Brute-force re-evaluation with no packing shortcuts.
func mp2Brute(c *sym.PackedC, e []float64, nOcc int) float64 {
	n := c.N
	var sum float64
	for i := 0; i < nOcc; i++ {
		for j := 0; j < nOcc; j++ {
			for a := nOcc; a < n; a++ {
				for b := nOcc; b < n; b++ {
					iajb := c.At(i, a, j, b)
					ibja := c.At(i, b, j, a)
					sum += iajb * (2*iajb - ibja) / (e[a] + e[b] - e[i] - e[j])
				}
			}
		}
	}
	return -sum
}

func TestMP2EnergyMatchesBruteForce(t *testing.T) {
	c, e := mp2Fixture(t, 12)
	got, err := MP2Energy(c, e, 4)
	if err != nil {
		t.Fatal(err)
	}
	want := mp2Brute(c, e, 4)
	if math.Abs(got-want) > 1e-12 {
		t.Errorf("MP2Energy = %v, brute force = %v", got, want)
	}
	if got == 0 {
		t.Error("energy unexpectedly zero")
	}
}

func TestMP2EnergyNegativeForDominantDiagonal(t *testing.T) {
	// With (ia|jb)^2 dominating the exchange term, E2 < 0 (the usual
	// physical sign of a correlation energy).
	c, e := mp2Fixture(t, 10)
	got, err := MP2Energy(c, e, 3)
	if err != nil {
		t.Fatal(err)
	}
	if got >= 0 {
		t.Errorf("E2 = %v, expected negative", got)
	}
}

func TestMP2EnergyValidation(t *testing.T) {
	c, e := mp2Fixture(t, 8)
	if _, err := MP2Energy(c, e[:5], 3); err == nil {
		t.Error("energy-count mismatch should error")
	}
	if _, err := MP2Energy(c, e, 0); err == nil {
		t.Error("nOcc = 0 should error")
	}
	if _, err := MP2Energy(c, e, 8); err == nil {
		t.Error("nOcc = n should error")
	}
	// Inverted energies make the denominator non-positive.
	bad := make([]float64, 8)
	for i := range bad {
		bad[i] = float64(8 - i)
	}
	if _, err := MP2Energy(c, bad, 3); err == nil {
		t.Error("non-positive denominator should error")
	}
}
