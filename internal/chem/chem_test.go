package chem

import (
	"math"
	"testing"
	"testing/quick"
)

func TestCatalogOrbitalCounts(t *testing.T) {
	want := map[string]int{
		"Hyperpolar":  368,
		"C60H20":      580,
		"Uracil":      698,
		"C40H56":      1023,
		"Shell-Mixed": 1194,
	}
	if len(Catalog) != len(want) {
		t.Fatalf("catalog has %d molecules, want %d", len(Catalog), len(want))
	}
	for name, orb := range want {
		m, err := ByName(name)
		if err != nil {
			t.Errorf("ByName(%q): %v", name, err)
			continue
		}
		if m.Orbitals != orb {
			t.Errorf("%s orbitals = %d, want %d", name, m.Orbitals, orb)
		}
	}
}

func TestByNameUnknown(t *testing.T) {
	if _, err := ByName("Unobtainium"); err == nil {
		t.Error("ByName on unknown molecule should error")
	}
}

// The paper (Section 8) quotes the unfused memory requirements of the
// five benchmarks as at least 110 GB, 678 GB, 1.4 TB, 6.5 TB, 12.1 TB.
func TestUnfusedMemoryMatchesPaper(t *testing.T) {
	const gb = 1e9
	want := map[string]float64{
		"Hyperpolar":  110 * gb,
		"C60H20":      678 * gb,
		"Uracil":      1.4e3 * gb,
		"C40H56":      6.5e3 * gb,
		"Shell-Mixed": 12.1e3 * gb,
	}
	for name, w := range want {
		m, _ := ByName(name)
		got := float64(m.UnfusedMemoryBytes())
		if math.Abs(got-w)/w > 0.05 {
			t.Errorf("%s unfused memory = %.3g bytes, paper says %.3g (>5%% off)", name, got, w)
		}
	}
}

func TestNewSpecValidation(t *testing.T) {
	if _, err := NewSpec(0, 1, 0); err == nil {
		t.Error("n=0 should error")
	}
	if _, err := NewSpec(4, 3, 0); err == nil {
		t.Error("s=3 (not a power of two) should error")
	}
	if _, err := NewSpec(4, 0, 0); err == nil {
		t.Error("s=0 should error")
	}
	for _, s := range []int{1, 2, 4, 8} {
		if _, err := NewSpec(16, s, 1); err != nil {
			t.Errorf("s=%d should be valid: %v", s, err)
		}
	}
}

func TestMustSpecPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustSpec with bad args did not panic")
		}
	}()
	MustSpec(-1, 1, 0)
}

func TestComputeAPermutationSymmetry(t *testing.T) {
	sp := MustSpec(12, 1, 42)
	for i := 0; i < 12; i++ {
		for j := 0; j < 12; j++ {
			for k := 0; k < 6; k++ {
				for l := 0; l < 6; l++ {
					v := sp.ComputeA(i, j, k, l)
					if sp.ComputeA(j, i, k, l) != v || sp.ComputeA(i, j, l, k) != v || sp.ComputeA(j, i, l, k) != v {
						t.Fatalf("A not symmetric at (%d,%d,%d,%d)", i, j, k, l)
					}
				}
			}
		}
	}
}

func TestComputeADeterministicAndSeeded(t *testing.T) {
	sp1 := MustSpec(10, 1, 7)
	sp2 := MustSpec(10, 1, 7)
	sp3 := MustSpec(10, 1, 8)
	if sp1.ComputeA(1, 2, 3, 4) != sp2.ComputeA(1, 2, 3, 4) {
		t.Error("same seed must give identical integrals")
	}
	if sp1.ComputeA(1, 2, 3, 4) == sp3.ComputeA(1, 2, 3, 4) {
		t.Error("different seeds should give different integrals")
	}
}

func TestComputeADecay(t *testing.T) {
	sp := MustSpec(200, 1, 3)
	// |A[i,j,..]| is bounded by exp(-0.08|i-j|) exp(-0.08|k-l|).
	for _, c := range [][4]int{{0, 150, 0, 0}, {0, 0, 10, 180}, {5, 190, 3, 170}} {
		bound := math.Exp(-0.08*math.Abs(float64(c[0]-c[1]))) * math.Exp(-0.08*math.Abs(float64(c[2]-c[3])))
		if v := math.Abs(sp.ComputeA(c[0], c[1], c[2], c[3])); v > bound {
			t.Errorf("A%v = %v exceeds decay bound %v", c, v, bound)
		}
	}
}

func TestComputeAOutOfRangePanics(t *testing.T) {
	sp := MustSpec(4, 1, 0)
	defer func() {
		if recover() == nil {
			t.Error("out-of-range ComputeA did not panic")
		}
	}()
	sp.ComputeA(0, 0, 0, 4)
}

func TestSpatialSymmetryZeroesA(t *testing.T) {
	sp := MustSpec(16, 4, 5)
	nonzeroForbidden := 0
	for i := 0; i < 16; i++ {
		for j := 0; j < 16; j++ {
			allowed := sp.Irrep(i)^sp.Irrep(j)^sp.Irrep(2)^sp.Irrep(3) == 0
			v := sp.ComputeA(i, j, 2, 3)
			if !allowed && v != 0 {
				nonzeroForbidden++
			}
		}
	}
	if nonzeroForbidden > 0 {
		t.Errorf("%d symmetry-forbidden elements are nonzero", nonzeroForbidden)
	}
}

func TestComputeBSymmetryAdapted(t *testing.T) {
	sp := MustSpec(16, 2, 5)
	for a := 0; a < 16; a++ {
		for i := 0; i < 16; i++ {
			v := sp.ComputeB(a, i)
			if sp.Irrep(a) != sp.Irrep(i) && v != 0 {
				t.Fatalf("B[%d,%d] = %v should vanish across irreps", a, i, v)
			}
		}
	}
}

func TestComputeBDiagonallyDominant(t *testing.T) {
	sp := MustSpec(64, 1, 11)
	for a := 0; a < 64; a++ {
		diag := math.Abs(sp.ComputeB(a, a))
		if diag < 0.8 {
			t.Errorf("B[%d,%d] = %v, want near 1", a, a, diag)
		}
	}
	off := math.Abs(sp.ComputeB(1, 2))
	if off > 0.5 {
		t.Errorf("off-diagonal B too large: %v", off)
	}
}

func TestComputeBOutOfRangePanics(t *testing.T) {
	sp := MustSpec(4, 1, 0)
	defer func() {
		if recover() == nil {
			t.Error("out-of-range ComputeB did not panic")
		}
	}()
	sp.ComputeB(4, 0)
}

func TestBMatrixAgreesWithComputeB(t *testing.T) {
	sp := MustSpec(9, 2, 13)
	b := sp.BMatrix()
	for a := 0; a < 9; a++ {
		for i := 0; i < 9; i++ {
			if b[a*9+i] != sp.ComputeB(a, i) {
				t.Fatalf("BMatrix[%d,%d] disagrees with ComputeB", a, i)
			}
		}
	}
}

func TestOrbitalEnergiesMonotoneSign(t *testing.T) {
	sp := MustSpec(100, 1, 1)
	if sp.OrbitalEnergy(0) >= 0 {
		t.Error("lowest orbital should be bound (negative energy)")
	}
	if sp.OrbitalEnergy(99) <= 0 {
		t.Error("highest orbital should be virtual (positive energy)")
	}
	defer func() {
		if recover() == nil {
			t.Error("out-of-range orbital energy did not panic")
		}
	}()
	sp.OrbitalEnergy(100)
}

func TestAllowedCFraction(t *testing.T) {
	if f := MustSpec(20, 1, 0).AllowedCFraction(); f != 1 {
		t.Errorf("S=1 fraction = %v, want 1", f)
	}
	// For large N the allowed fraction approaches 1/S (Table 1: C is
	// n^4/(4s)).
	for _, s := range []int{2, 4, 8} {
		f := MustSpec(256, s, 0).AllowedCFraction()
		want := 1 / float64(s)
		if math.Abs(f-want)/want > 0.1 {
			t.Errorf("S=%d fraction = %v, want ~%v", s, f, want)
		}
	}
}

// Property: the Z2^k selection rule is consistent — if A[i,j,k,l] != 0
// then the XOR of irreps is 0.
func TestQuickSelectionRule(t *testing.T) {
	sp := MustSpec(32, 4, 9)
	f := func(i, j, k, l uint8) bool {
		a, b, c, d := int(i)%32, int(j)%32, int(k)%32, int(l)%32
		v := sp.ComputeA(a, b, c, d)
		if v != 0 {
			return sp.Irrep(a)^sp.Irrep(b)^sp.Irrep(c)^sp.Irrep(d) == 0
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// Property: values stay in a sane range (decay bound <= 1).
func TestQuickValueRange(t *testing.T) {
	sp := MustSpec(64, 1, 123)
	f := func(i, j, k, l uint8) bool {
		v := sp.ComputeA(int(i)%64, int(j)%64, int(k)%64, int(l)%64)
		return v > -1 && v < 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestWithBOverride(t *testing.T) {
	sp := MustSpec(4, 1, 3)
	b := make([]float64, 16)
	for i := range b {
		b[i] = float64(i)
	}
	sp2, err := sp.WithB(b)
	if err != nil {
		t.Fatal(err)
	}
	if got := sp2.ComputeB(2, 3); got != 11 {
		t.Errorf("override ComputeB(2,3) = %v, want 11", got)
	}
	// The original spec is untouched, and the override copied.
	if sp.ComputeB(2, 3) == 11 {
		t.Error("WithB mutated the original spec")
	}
	b[11] = 99
	if sp2.ComputeB(2, 3) != 11 {
		t.Error("WithB aliases the caller's slice")
	}
	// BMatrix reflects the override.
	if sp2.BMatrix()[2*4+3] != 11 {
		t.Error("BMatrix ignores the override")
	}
}

func TestWithBValidation(t *testing.T) {
	sp := MustSpec(4, 2, 3)
	if _, err := sp.WithB(make([]float64, 16)); err == nil {
		t.Error("WithB with spatial symmetry should error")
	}
	sp1 := MustSpec(4, 1, 3)
	if _, err := sp1.WithB(make([]float64, 9)); err == nil {
		t.Error("wrong-size matrix should error")
	}
}

func TestCoreHamiltonianSymmetric(t *testing.T) {
	sp := MustSpec(12, 1, 9)
	h := sp.CoreHamiltonian()
	for i := 0; i < 12; i++ {
		if h[i*12+i] >= 0 {
			t.Errorf("diagonal H[%d][%d] = %v, want negative (bound)", i, i, h[i*12+i])
		}
		for j := 0; j < 12; j++ {
			if h[i*12+j] != h[j*12+i] {
				t.Fatalf("Hcore not symmetric at (%d,%d)", i, j)
			}
		}
	}
	// Diagonal rises toward zero.
	if h[0] >= h[11*12+11] {
		t.Error("diagonal levels should ascend")
	}
}
