// Package chem supplies the quantum-chemistry inputs of the four-index
// transform: the benchmark molecule catalog of the paper's evaluation
// (Section 8), a deterministic synthetic integral generator standing in
// for NWChem's atomic-orbital integral code (the paper's ComputeA), and a
// synthetic molecular-orbital coefficient matrix (ComputeB).
//
// Real integrals require a basis-set library and an SCF solver; the data
// movement behaviour of the transform, which is what the paper analyses,
// depends only on tensor sizes, permutation symmetry, spatial symmetry
// and on-the-fly producibility. The generator reproduces exactly those
// properties:
//
//   - A[i,j,k,l] is symmetric under i<->j and k<->l,
//   - values decay with |i-j| and |k-l| like two-electron integrals,
//   - every element is computable independently ("produced on the fly",
//     Section 7.1), and
//   - with a spatial-symmetry order s > 1, orbitals carry irrep labels
//     of an abelian group (Z2^k) and A (hence C) vanishes unless the
//     product of the four irreps is totally symmetric, giving the 1/s
//     size reduction of the output tensor quoted in Table 1.
package chem

import (
	"fmt"
	"math"
	"math/bits"
)

// Molecule describes a benchmark system from the paper's evaluation.
type Molecule struct {
	Name     string
	Orbitals int // number of orbitals = extent of every tensor dimension
	Class    string
}

// The five benchmark molecules of Section 8, with the paper's orbital
// counts: 368 (small), 580 (medium), 698 (large), 1023 and 1194 (very
// large).
var Catalog = []Molecule{
	{Name: "Hyperpolar", Orbitals: 368, Class: "small"},
	{Name: "C60H20", Orbitals: 580, Class: "medium"},
	{Name: "Uracil", Orbitals: 698, Class: "large"},
	{Name: "C40H56", Orbitals: 1023, Class: "verylarge"},
	{Name: "Shell-Mixed", Orbitals: 1194, Class: "verylarge"},
}

// ByName looks up a catalog molecule (case-sensitive).
func ByName(name string) (Molecule, error) {
	for _, m := range Catalog {
		if m.Name == name {
			return m, nil
		}
	}
	return Molecule{}, fmt.Errorf("chem: unknown molecule %q", name)
}

// UnfusedMemoryBytes returns the minimum aggregate memory, in bytes, an
// unfused transform needs: |O1| + |O2| = 3n^4/4 words of 8 bytes
// (Section 2.2). For the catalog this reproduces the paper's figures of
// 110 GB, 678 GB, 1.4 TB, 6.5 TB and 12.1 TB.
func (m Molecule) UnfusedMemoryBytes() int64 {
	n := int64(m.Orbitals)
	return 3 * n * n * n * n / 4 * 8
}

// Spec is a synthetic electronic-structure specification: extent,
// spatial-symmetry order, and a seed making all values reproducible.
type Spec struct {
	N    int    // number of orbitals
	S    int    // spatial symmetry order (power of two; 1 = none)
	Seed uint64 // generator seed

	// bOverride, when non-nil, replaces the synthetic coefficient
	// matrix: ComputeB(a, i) returns bOverride[a*N+i]. Installed by
	// WithB, typically with converged SCF coefficients.
	bOverride []float64
}

// NewSpec validates and returns a Spec. S must be a power of two >= 1
// (abelian Z2^k point groups: C1, C2/Ci/Cs, C2v/C2h/D2, D2h have orders
// 1, 2, 4, 8).
func NewSpec(n, s int, seed uint64) (Spec, error) {
	if n <= 0 {
		return Spec{}, fmt.Errorf("chem: non-positive orbital count %d", n)
	}
	if s < 1 || bits.OnesCount(uint(s)) != 1 {
		return Spec{}, fmt.Errorf("chem: spatial symmetry order %d must be a power of two >= 1", s)
	}
	return Spec{N: n, S: s, Seed: seed}, nil
}

// MustSpec is NewSpec for known-good arguments; it panics on error.
func MustSpec(n, s int, seed uint64) Spec {
	sp, err := NewSpec(n, s, seed)
	if err != nil {
		panic(err)
	}
	return sp
}

// Irrep returns the irreducible-representation label of orbital p, in
// [0, S). Orbitals are blocked by irrep — the first ~N/S orbitals belong
// to irrep 0, the next block to irrep 1, and so on — which is how
// symmetry-adapted codes order their orbitals and what makes the spatial
// block sparsity of the output tensor visible at data-tile granularity.
func (sp Spec) Irrep(p int) int { return p * sp.S / sp.N }

// AllowedA reports whether A[i,j,k,l] may be nonzero under the spatial
// symmetry: the XOR (group product in Z2^k) of the four irreps must be
// the totally symmetric irrep 0.
func (sp Spec) AllowedA(i, j, k, l int) bool {
	return sp.Irrep(i)^sp.Irrep(j)^sp.Irrep(k)^sp.Irrep(l) == 0
}

// splitmix64 is a strong 64-bit mixer used to derive reproducible
// pseudo-random values from index tuples.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// hashUnit maps a key to a deterministic float64 in (-1, 1).
func hashUnit(key uint64) float64 {
	h := splitmix64(key)
	// 53 mantissa bits -> [0,1), then shift to (-1,1).
	u := float64(h>>11) / float64(1<<53)
	return 2*u - 1
}

// ComputeA returns the synthetic atomic-orbital integral A[i,j,k,l].
// It is exactly symmetric under i<->j and k<->l (indices are
// canonicalised before hashing), decays with charge-distribution
// separation like Schwarz-bounded two-electron integrals, and vanishes
// when spatial symmetry forbids the element.
func (sp Spec) ComputeA(i, j, k, l int) float64 {
	if i < 0 || j < 0 || k < 0 || l < 0 || i >= sp.N || j >= sp.N || k >= sp.N || l >= sp.N {
		panic(fmt.Sprintf("chem: ComputeA index (%d,%d,%d,%d) out of range [0,%d)", i, j, k, l, sp.N))
	}
	if !sp.AllowedA(i, j, k, l) {
		return 0
	}
	if j > i {
		i, j = j, i
	}
	if l > k {
		k, l = l, k
	}
	key := sp.Seed
	key = splitmix64(key ^ uint64(i)<<48 ^ uint64(j)<<32 ^ uint64(k)<<16 ^ uint64(l))
	decay := math.Exp(-0.08*float64(i-j)) * math.Exp(-0.08*float64(k-l))
	return hashUnit(key) * decay
}

// ComputeB returns the synthetic molecular-orbital coefficient
// B[a, i] (row: MO index a, column: AO index i). When S > 1 the matrix
// is symmetry-adapted: B[a,i] = 0 unless orbital a and basis function i
// belong to the same irrep, which is what makes the transformed tensor C
// inherit the block sparsity of Table 1.
func (sp Spec) ComputeB(a, i int) float64 {
	if a < 0 || i < 0 || a >= sp.N || i >= sp.N {
		panic(fmt.Sprintf("chem: ComputeB index (%d,%d) out of range [0,%d)", a, i, sp.N))
	}
	if sp.bOverride != nil {
		return sp.bOverride[a*sp.N+i]
	}
	if sp.Irrep(a) != sp.Irrep(i) {
		return 0
	}
	key := splitmix64(sp.Seed ^ 0xb10c5eed ^ uint64(a)<<32 ^ uint64(i))
	v := hashUnit(key) / math.Sqrt(float64(sp.N))
	if a == i {
		v += 1 // diagonally dominant, like near-orthogonal MO coefficients
	}
	return v
}

// WithB returns a copy of the spec whose coefficient matrix is replaced
// by b (row-major, B[mo*N + ao]) — typically the converged coefficients
// of an SCF calculation. The override is incompatible with spatial
// symmetry (the synthetic irrep adaptation no longer applies).
func (sp Spec) WithB(b []float64) (Spec, error) {
	if sp.S != 1 {
		return Spec{}, fmt.Errorf("chem: WithB requires spatial symmetry order 1, have %d", sp.S)
	}
	if len(b) != sp.N*sp.N {
		return Spec{}, fmt.Errorf("chem: WithB matrix has %d elements, want %d", len(b), sp.N*sp.N)
	}
	cp := make([]float64, len(b))
	copy(cp, b)
	sp.bOverride = cp
	return sp, nil
}

// CoreHamiltonian returns the synthetic one-electron Hamiltonian: a
// symmetric N x N matrix with bound (negative) diagonal levels rising
// toward zero and exponentially decaying off-diagonal couplings — the
// Hcore an SCF iteration starts from.
func (sp Spec) CoreHamiltonian() []float64 {
	n := sp.N
	h := make([]float64, n*n)
	for i := 0; i < n; i++ {
		h[i*n+i] = -4 + 3*float64(i)/float64(n) // -4 .. -1
		for j := 0; j < i; j++ {
			v := 0.2 * hashUnit(splitmix64(sp.Seed^0xc04e^uint64(i)<<20^uint64(j))) *
				math.Exp(-0.3*float64(i-j))
			h[i*n+j], h[j*n+i] = v, v
		}
	}
	return h
}

// BMatrix materialises the full N x N coefficient matrix row-major.
func (sp Spec) BMatrix() []float64 {
	b := make([]float64, sp.N*sp.N)
	for a := 0; a < sp.N; a++ {
		for i := 0; i < sp.N; i++ {
			b[a*sp.N+i] = sp.ComputeB(a, i)
		}
	}
	return b
}

// OrbitalEnergy returns a synthetic canonical orbital energy for orbital
// p: monotonically increasing, negative for low orbitals (occupied-like)
// and positive above. Used by the MP2 example.
func (sp Spec) OrbitalEnergy(p int) float64 {
	if p < 0 || p >= sp.N {
		panic(fmt.Sprintf("chem: orbital %d out of range [0,%d)", p, sp.N))
	}
	frac := float64(p)/float64(sp.N) - 0.3 // 30% "occupied"
	return 4*frac + 0.5*hashUnit(splitmix64(sp.Seed^0xe4e26))*0.01
}

// AllowedCFraction returns the exact fraction of packed C elements that
// can be nonzero under the spatial symmetry, by counting irrep-allowed
// (ab, cd) combinations. For S = 1 it returns 1; for S > 1 it approaches
// 1/S for large N.
func (sp Spec) AllowedCFraction() float64 {
	if sp.S == 1 {
		return 1
	}
	// Count canonical pairs per pair-irrep (XOR of the two labels).
	counts := make([]int64, sp.S)
	for a := 0; a < sp.N; a++ {
		for b := 0; b <= a; b++ {
			counts[sp.Irrep(a)^sp.Irrep(b)]++
		}
	}
	var allowed, total int64
	for x := 0; x < sp.S; x++ {
		// (ab) with pair-irrep x combines with (cd) of pair-irrep x.
		allowed += counts[x] * counts[x]
	}
	var m int64
	for _, c := range counts {
		m += c
	}
	total = m * m
	return float64(allowed) / float64(total)
}
