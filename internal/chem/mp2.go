package chem

import (
	"fmt"

	"fourindex/internal/sym"
)

// MP2Energy evaluates the closed-shell second-order Moller-Plesset
// correlation energy from transformed molecular-orbital integrals — the
// canonical consumer of the four-index transform:
//
//	E2 = - sum_{i,j in occ; a,b in virt} (ia|jb) [2 (ia|jb) - (ib|ja)]
//	     / (e_a + e_b - e_i - e_j)
//
// c holds the packed-symmetric (pq|rs) integrals, energies the canonical
// orbital energies, and nOcc the number of occupied orbitals (indices
// [0, nOcc)). The denominator must be positive for every (i, j, a, b)
// combination — guaranteed when occupied energies lie below virtual
// ones, as OrbitalEnergy produces.
func MP2Energy(c *sym.PackedC, energies []float64, nOcc int) (float64, error) {
	n := c.N
	if len(energies) != n {
		return 0, fmt.Errorf("chem: %d orbital energies for extent %d", len(energies), n)
	}
	if nOcc <= 0 || nOcc >= n {
		return 0, fmt.Errorf("chem: occupied count %d out of (0, %d)", nOcc, n)
	}
	var e2 float64
	for i := 0; i < nOcc; i++ {
		for j := 0; j < nOcc; j++ {
			for a := nOcc; a < n; a++ {
				for b := nOcc; b < n; b++ {
					denom := energies[a] + energies[b] - energies[i] - energies[j]
					if denom <= 0 {
						return 0, fmt.Errorf("chem: non-positive MP2 denominator at (i=%d,j=%d,a=%d,b=%d)", i, j, a, b)
					}
					iajb := c.At(i, a, j, b)
					ibja := c.At(i, b, j, a)
					e2 += iajb * (2*iajb - ibja) / denom
				}
			}
		}
	}
	return -e2, nil
}
