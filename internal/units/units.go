// Package units parses and formats human-friendly byte quantities for
// the command-line tools ("512MB", "1.4TB", ...). Decimal SI multipliers
// are used, matching the paper's terabyte figures.
package units

import (
	"fmt"
	"strconv"
	"strings"
)

var suffixes = []struct {
	name string
	mul  float64
}{
	{"PB", 1e15}, {"TB", 1e12}, {"GB", 1e9}, {"MB", 1e6}, {"KB", 1e3}, {"B", 1},
}

// ParseBytes converts strings like "24GB", "1.4 TB", or "1048576" (plain
// bytes) to a byte count.
func ParseBytes(s string) (int64, error) {
	u := strings.ToUpper(strings.TrimSpace(s))
	mult := 1.0
	for _, sfx := range suffixes {
		if strings.HasSuffix(u, sfx.name) {
			u = strings.TrimSuffix(u, sfx.name)
			mult = sfx.mul
			break
		}
	}
	u = strings.TrimSpace(u)
	if u == "" {
		return 0, fmt.Errorf("units: empty size %q", s)
	}
	v, err := strconv.ParseFloat(u, 64)
	if err != nil {
		return 0, fmt.Errorf("units: bad size %q: %w", s, err)
	}
	if v < 0 {
		return 0, fmt.Errorf("units: negative size %q", s)
	}
	return int64(v * mult), nil
}

// FormatBytes renders a byte count with the largest suffix that keeps
// the mantissa >= 1, e.g. 12190000000000 -> "12.19TB".
func FormatBytes(b int64) string {
	f := float64(b)
	for _, sfx := range suffixes {
		if f >= sfx.mul {
			return fmt.Sprintf("%.4g%s", f/sfx.mul, sfx.name)
		}
	}
	return fmt.Sprintf("%dB", b)
}
