package units

import (
	"testing"
	"testing/quick"
)

func TestParseBytes(t *testing.T) {
	cases := []struct {
		in   string
		want int64
	}{
		{"0", 0},
		{"123", 123},
		{"1KB", 1000},
		{"1.5KB", 1500},
		{"24GB", 24e9},
		{"1.4TB", 1.4e12},
		{"  9 TB ", 9e12},
		{"512mb", 512e6},
		{"2PB", 2e15},
		{"100B", 100},
	}
	for _, c := range cases {
		got, err := ParseBytes(c.in)
		if err != nil {
			t.Errorf("ParseBytes(%q): %v", c.in, err)
			continue
		}
		if got != c.want {
			t.Errorf("ParseBytes(%q) = %d, want %d", c.in, got, c.want)
		}
	}
}

func TestParseBytesErrors(t *testing.T) {
	for _, in := range []string{"", "GB", "x12", "-5GB", "1.2.3MB"} {
		if _, err := ParseBytes(in); err == nil {
			t.Errorf("ParseBytes(%q) should error", in)
		}
	}
}

func TestFormatBytes(t *testing.T) {
	cases := []struct {
		in   int64
		want string
	}{
		{0, "0B"},
		{999, "999B"},
		{1000, "1KB"},
		{24_000_000_000, "24GB"},
		{12_190_000_000_000, "12.19TB"},
	}
	for _, c := range cases {
		if got := FormatBytes(c.in); got != c.want {
			t.Errorf("FormatBytes(%d) = %q, want %q", c.in, got, c.want)
		}
	}
}

// Property: Format then Parse round-trips within formatting precision.
func TestQuickRoundTrip(t *testing.T) {
	f := func(v uint32) bool {
		b := int64(v) * 1000
		parsed, err := ParseBytes(FormatBytes(b))
		if err != nil {
			return false
		}
		if b == 0 {
			return parsed == 0
		}
		ratio := float64(parsed) / float64(b)
		return ratio > 0.999 && ratio < 1.001
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
