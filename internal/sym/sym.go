// Package sym implements the permutation-symmetry machinery of the
// four-index transform (Section 2.1 of the paper).
//
// A tensor is symmetric with respect to a subset of its indices when
// permuting indices within the subset leaves the value unchanged. Such a
// symmetry group of d indices needs only the canonically ordered
// (i1 >= i2 >= ... >= id) elements stored, a factor ~d! reduction.
//
// The tensors of the transform carry the following symmetry structure
// (Table 1):
//
//	A [ij, kl]      two pair groups          n^4/4 elements
//	O1[a, j, kl]    one pair group           n^4/2 elements
//	O2[ab, kl]      two pair groups          n^4/4 elements
//	O3[ab, c, l]    one pair group           n^4/2 elements
//	C [ab, cd]      two pair groups (+ spatial symmetry) n^4/(4s)
//
// This package provides the triangular pair index bijection and packed
// container types for each of the five tensors, along with conversions to
// and from fully expanded dense tensors for correctness checking.
package sym

import (
	"fmt"

	"fourindex/internal/tensor"
)

// Pairs returns the number of canonically ordered pairs (i >= j) drawn
// from [0, n), i.e. n(n+1)/2.
func Pairs(n int) int { return n * (n + 1) / 2 }

// PairIndex maps a canonical pair i >= j (both in [0, n)) to its packed
// index in [0, Pairs(n)). The layout is row-by-row lower triangular:
// (0,0) -> 0, (1,0) -> 1, (1,1) -> 2, (2,0) -> 3, ...
func PairIndex(i, j int) int {
	if j > i {
		panic(fmt.Sprintf("sym: PairIndex requires i >= j, got (%d,%d)", i, j))
	}
	return i*(i+1)/2 + j
}

// CanonicalPairIndex maps an arbitrary pair to the packed index of its
// canonical ordering.
func CanonicalPairIndex(i, j int) int {
	if j > i {
		i, j = j, i
	}
	return PairIndex(i, j)
}

// UnpairIndex inverts PairIndex: it returns the canonical (i, j) with
// i >= j for a packed index p >= 0.
func UnpairIndex(p int) (i, j int) {
	if p < 0 {
		panic(fmt.Sprintf("sym: negative pair index %d", p))
	}
	// i is the largest integer with i(i+1)/2 <= p. Start from the
	// floating-point estimate and correct, which is exact for all p
	// within int range.
	i = int((isqrt(8*uint64(p)+1) - 1) / 2)
	for i*(i+1)/2 > p {
		i--
	}
	for (i+1)*(i+2)/2 <= p {
		i++
	}
	return i, p - i*(i+1)/2
}

// isqrt returns floor(sqrt(x)) computed exactly in integers.
func isqrt(x uint64) uint64 {
	if x == 0 {
		return 0
	}
	r := uint64(1) << ((bits64(x) + 1) / 2)
	for {
		nr := (r + x/r) / 2
		if nr >= r {
			return r
		}
		r = nr
	}
}

func bits64(x uint64) uint {
	var n uint
	for x > 0 {
		x >>= 1
		n++
	}
	return n
}

// PackedA stores A[ij, kl]: symmetric in (i,j) and in (k,l), packed as a
// Pairs(n) x Pairs(n) matrix.
type PackedA struct {
	N    int
	data []float64
}

// NewPackedA allocates a zeroed packed A for extent n.
func NewPackedA(n int) *PackedA {
	m := Pairs(n)
	return &PackedA{N: n, data: make([]float64, m*m)}
}

// Size returns the number of stored elements, Pairs(n)^2.
func (a *PackedA) Size() int { return len(a.data) }

// Data exposes the backing slice: row index = packed (ij), column index =
// packed (kl).
func (a *PackedA) Data() []float64 { return a.data }

// At returns A[i,j,k,l] for arbitrary index order.
func (a *PackedA) At(i, j, k, l int) float64 {
	m := Pairs(a.N)
	return a.data[CanonicalPairIndex(i, j)*m+CanonicalPairIndex(k, l)]
}

// Set assigns the canonical element underlying A[i,j,k,l].
func (a *PackedA) Set(v float64, i, j, k, l int) {
	m := Pairs(a.N)
	a.data[CanonicalPairIndex(i, j)*m+CanonicalPairIndex(k, l)] = v
}

// Row returns the packed row A[ij, *] for canonical pair index ij.
func (a *PackedA) Row(ij int) []float64 {
	m := Pairs(a.N)
	return a.data[ij*m : (ij+1)*m]
}

// ToDense expands to the full n^4 tensor, applying the symmetry.
func (a *PackedA) ToDense() *tensor.Dense {
	n := a.N
	d := tensor.New(n, n, n, n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			for k := 0; k < n; k++ {
				for l := 0; l < n; l++ {
					d.Set(a.At(i, j, k, l), i, j, k, l)
				}
			}
		}
	}
	return d
}

// PackA packs a full dense tensor that is (assumed) symmetric in (i,j)
// and (k,l). Only canonical elements are read.
func PackA(d *tensor.Dense) *PackedA {
	n := d.Dim(0)
	a := NewPackedA(n)
	for i := 0; i < n; i++ {
		for j := 0; j <= i; j++ {
			for k := 0; k < n; k++ {
				for l := 0; l <= k; l++ {
					a.Set(d.At(i, j, k, l), i, j, k, l)
				}
			}
		}
	}
	return a
}

// PackedO1 stores O1[a, j, kl]: symmetric in (k,l) only.
// Layout: [a][j][kl] row-major with kl fastest.
type PackedO1 struct {
	N    int // extent of every tensor dimension
	data []float64
}

// NewPackedO1 allocates a zeroed packed O1 for extent n.
func NewPackedO1(n int) *PackedO1 {
	return &PackedO1{N: n, data: make([]float64, n*n*Pairs(n))}
}

// Size returns the number of stored elements, n^2 * Pairs(n).
func (o *PackedO1) Size() int { return len(o.data) }

// Data exposes the backing slice.
func (o *PackedO1) Data() []float64 { return o.data }

// At returns O1[a, j, k, l].
func (o *PackedO1) At(a, j, k, l int) float64 {
	m := Pairs(o.N)
	return o.data[(a*o.N+j)*m+CanonicalPairIndex(k, l)]
}

// Add accumulates into O1[a, j, k, l] (canonical element).
func (o *PackedO1) Add(v float64, a, j, k, l int) {
	m := Pairs(o.N)
	o.data[(a*o.N+j)*m+CanonicalPairIndex(k, l)] += v
}

// PackedO2 stores O2[ab, kl]: symmetric in (a,b) and (k,l).
type PackedO2 struct {
	N    int
	data []float64
}

// NewPackedO2 allocates a zeroed packed O2 for extent n.
func NewPackedO2(n int) *PackedO2 {
	m := Pairs(n)
	return &PackedO2{N: n, data: make([]float64, m*m)}
}

// Size returns the number of stored elements, Pairs(n)^2.
func (o *PackedO2) Size() int { return len(o.data) }

// Data exposes the backing slice: row = packed (ab), col = packed (kl).
func (o *PackedO2) Data() []float64 { return o.data }

// At returns O2[a, b, k, l].
func (o *PackedO2) At(a, b, k, l int) float64 {
	m := Pairs(o.N)
	return o.data[CanonicalPairIndex(a, b)*m+CanonicalPairIndex(k, l)]
}

// Add accumulates into the canonical element of O2[a, b, k, l].
func (o *PackedO2) Add(v float64, a, b, k, l int) {
	m := Pairs(o.N)
	o.data[CanonicalPairIndex(a, b)*m+CanonicalPairIndex(k, l)] += v
}

// Row returns the packed row O2[ab, *].
func (o *PackedO2) Row(ab int) []float64 {
	m := Pairs(o.N)
	return o.data[ab*m : (ab+1)*m]
}

// PackedO3 stores O3[ab, c, l]: symmetric in (a,b) only.
// Layout: [ab][c][l] row-major with l fastest.
type PackedO3 struct {
	N    int
	data []float64
}

// NewPackedO3 allocates a zeroed packed O3 for extent n.
func NewPackedO3(n int) *PackedO3 {
	return &PackedO3{N: n, data: make([]float64, Pairs(n)*n*n)}
}

// Size returns the number of stored elements, Pairs(n) * n^2.
func (o *PackedO3) Size() int { return len(o.data) }

// Data exposes the backing slice.
func (o *PackedO3) Data() []float64 { return o.data }

// At returns O3[a, b, c, l].
func (o *PackedO3) At(a, b, c, l int) float64 {
	return o.data[(CanonicalPairIndex(a, b)*o.N+c)*o.N+l]
}

// Add accumulates into the canonical element of O3[a, b, c, l].
func (o *PackedO3) Add(v float64, a, b, c, l int) {
	o.data[(CanonicalPairIndex(a, b)*o.N+c)*o.N+l] += v
}

// PackedC stores C[ab, cd]: symmetric in (a,b) and (c,d).
type PackedC struct {
	N    int
	data []float64
}

// NewPackedC allocates a zeroed packed C for extent n.
func NewPackedC(n int) *PackedC {
	m := Pairs(n)
	return &PackedC{N: n, data: make([]float64, m*m)}
}

// Size returns the number of stored elements, Pairs(n)^2.
func (c *PackedC) Size() int { return len(c.data) }

// Data exposes the backing slice: row = packed (ab), col = packed (cd).
func (c *PackedC) Data() []float64 { return c.data }

// At returns C[a, b, cc, d].
func (c *PackedC) At(a, b, cc, d int) float64 {
	m := Pairs(c.N)
	return c.data[CanonicalPairIndex(a, b)*m+CanonicalPairIndex(cc, d)]
}

// Add accumulates into the canonical element of C[a, b, cc, d].
func (c *PackedC) Add(v float64, a, b, cc, d int) {
	m := Pairs(c.N)
	c.data[CanonicalPairIndex(a, b)*m+CanonicalPairIndex(cc, d)] += v
}

// ToDense expands to the full n^4 tensor, applying the symmetry.
func (c *PackedC) ToDense() *tensor.Dense {
	n := c.N
	d := tensor.New(n, n, n, n)
	for a := 0; a < n; a++ {
		for b := 0; b < n; b++ {
			for g := 0; g < n; g++ {
				for e := 0; e < n; e++ {
					d.Set(c.At(a, b, g, e), a, b, g, e)
				}
			}
		}
	}
	return d
}

// PackC packs a full dense tensor assumed symmetric in (a,b) and (c,d).
func PackC(d *tensor.Dense) *PackedC {
	n := d.Dim(0)
	c := NewPackedC(n)
	for a := 0; a < n; a++ {
		for b := 0; b <= a; b++ {
			for g := 0; g < n; g++ {
				for e := 0; e <= g; e++ {
					m := Pairs(n)
					c.data[PairIndex(a, b)*m+PairIndex(g, e)] = d.At(a, b, g, e)
				}
			}
		}
	}
	return c
}

// MaxAbsDiffC returns the largest absolute difference between two packed
// C tensors of the same extent.
func MaxAbsDiffC(x, y *PackedC) float64 {
	if x.N != y.N {
		panic(fmt.Sprintf("sym: extent mismatch %d vs %d", x.N, y.N))
	}
	var m float64
	for i := range x.data {
		d := x.data[i] - y.data[i]
		if d < 0 {
			d = -d
		}
		if d > m {
			m = d
		}
	}
	return m
}
