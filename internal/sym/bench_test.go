package sym

import "testing"

func BenchmarkPairIndex(b *testing.B) {
	var sink int
	for i := 0; i < b.N; i++ {
		sink += CanonicalPairIndex(i%1000, (i*7)%1000)
	}
	_ = sink
}

func BenchmarkUnpairIndex(b *testing.B) {
	var sink int
	for i := 0; i < b.N; i++ {
		x, y := UnpairIndex(i % 500000)
		sink += x + y
	}
	_ = sink
}

func BenchmarkPackedAAccess(b *testing.B) {
	a := NewPackedA(64)
	var sink float64
	for i := 0; i < b.N; i++ {
		sink += a.At(i%64, (i*3)%64, (i*5)%64, (i*7)%64)
	}
	_ = sink
}
