package sym

// Sizes holds element counts for the five tensors of the four-index
// transform (Table 1 of the paper).
type Sizes struct {
	A, O1, O2, O3, C int64
}

// ExactSizes returns the exact packed element counts for extent n with a
// spatial-symmetry reduction factor s >= 1 applied to the output tensor C
// only (Section 2.1: spatial symmetry zeroes blocks of C and reduces no
// other tensor). With M = n(n+1)/2:
//
//	|A| = M^2, |O1| = n^2 M, |O2| = M^2, |O3| = M n^2, |C| = M^2 / s
func ExactSizes(n, s int) Sizes {
	if s < 1 {
		s = 1
	}
	m := int64(Pairs(n))
	nn := int64(n) * int64(n)
	return Sizes{
		A:  m * m,
		O1: nn * m,
		O2: m * m,
		O3: m * nn,
		C:  m * m / int64(s),
	}
}

// PaperSizes returns the leading-order sizes quoted in Table 1:
// n^4/4, n^4/2, n^4/4, n^4/2, n^4/(4s).
func PaperSizes(n, s int) Sizes {
	if s < 1 {
		s = 1
	}
	n4 := int64(n) * int64(n) * int64(n) * int64(n)
	return Sizes{
		A:  n4 / 4,
		O1: n4 / 2,
		O2: n4 / 4,
		O3: n4 / 2,
		C:  n4 / (4 * int64(s)),
	}
}

// Total returns the sum of all five tensor sizes.
func (s Sizes) Total() int64 { return s.A + s.O1 + s.O2 + s.O3 + s.C }

// MaxIntermediate returns the size of the largest intermediate (O1..O3).
func (s Sizes) MaxIntermediate() int64 {
	m := s.O1
	if s.O2 > m {
		m = s.O2
	}
	if s.O3 > m {
		m = s.O3
	}
	return m
}
