package sym

import (
	"math/rand"
	"testing"
	"testing/quick"

	"fourindex/internal/tensor"
)

func TestPairs(t *testing.T) {
	cases := []struct{ n, want int }{{0, 0}, {1, 1}, {2, 3}, {3, 6}, {10, 55}, {100, 5050}}
	for _, c := range cases {
		if got := Pairs(c.n); got != c.want {
			t.Errorf("Pairs(%d) = %d, want %d", c.n, got, c.want)
		}
	}
}

func TestPairIndexLayout(t *testing.T) {
	// Row-by-row lower triangular enumeration.
	want := map[[2]int]int{
		{0, 0}: 0, {1, 0}: 1, {1, 1}: 2, {2, 0}: 3, {2, 1}: 4, {2, 2}: 5,
	}
	for p, idx := range want {
		if got := PairIndex(p[0], p[1]); got != idx {
			t.Errorf("PairIndex(%d,%d) = %d, want %d", p[0], p[1], got, idx)
		}
	}
}

func TestPairIndexRequiresCanonical(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("PairIndex(0,1) did not panic")
		}
	}()
	PairIndex(0, 1)
}

func TestCanonicalPairIndexSymmetric(t *testing.T) {
	for i := 0; i < 20; i++ {
		for j := 0; j < 20; j++ {
			if CanonicalPairIndex(i, j) != CanonicalPairIndex(j, i) {
				t.Fatalf("CanonicalPairIndex not symmetric at (%d,%d)", i, j)
			}
		}
	}
}

func TestPairUnpairBijection(t *testing.T) {
	n := 50
	seen := make(map[int]bool)
	for i := 0; i < n; i++ {
		for j := 0; j <= i; j++ {
			p := PairIndex(i, j)
			if p < 0 || p >= Pairs(n) {
				t.Fatalf("PairIndex(%d,%d) = %d out of range [0,%d)", i, j, p, Pairs(n))
			}
			if seen[p] {
				t.Fatalf("PairIndex(%d,%d) = %d is a duplicate", i, j, p)
			}
			seen[p] = true
			gi, gj := UnpairIndex(p)
			if gi != i || gj != j {
				t.Fatalf("UnpairIndex(%d) = (%d,%d), want (%d,%d)", p, gi, gj, i, j)
			}
		}
	}
	if len(seen) != Pairs(n) {
		t.Fatalf("covered %d pair indices, want %d", len(seen), Pairs(n))
	}
}

func TestUnpairLargeValues(t *testing.T) {
	// Exercise the integer-sqrt path well beyond float32 precision.
	for _, p := range []int{0, 1, 2, 1 << 20, 1<<30 + 12345, 1 << 40} {
		i, j := UnpairIndex(p)
		if j < 0 || j > i {
			t.Fatalf("UnpairIndex(%d) = (%d,%d) not canonical", p, i, j)
		}
		if got := PairIndex(i, j); got != p {
			t.Fatalf("PairIndex(UnpairIndex(%d)) = %d", p, got)
		}
	}
}

func TestUnpairNegativePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("UnpairIndex(-1) did not panic")
		}
	}()
	UnpairIndex(-1)
}

func TestQuickPairRoundTrip(t *testing.T) {
	f := func(p uint32) bool {
		i, j := UnpairIndex(int(p))
		return j >= 0 && j <= i && PairIndex(i, j) == int(p)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestPackedASymmetryAndRoundTrip(t *testing.T) {
	n := 5
	a := NewPackedA(n)
	if a.Size() != Pairs(n)*Pairs(n) {
		t.Fatalf("Size = %d, want %d", a.Size(), Pairs(n)*Pairs(n))
	}
	a.Set(3.5, 1, 3, 0, 2) // stored as (3,1),(2,0)
	for _, idx := range [][4]int{{1, 3, 0, 2}, {3, 1, 0, 2}, {1, 3, 2, 0}, {3, 1, 2, 0}} {
		if got := a.At(idx[0], idx[1], idx[2], idx[3]); got != 3.5 {
			t.Errorf("At(%v) = %v, want 3.5", idx, got)
		}
	}
	d := a.ToDense()
	if d.At(3, 1, 2, 0) != 3.5 || d.At(1, 3, 0, 2) != 3.5 {
		t.Error("ToDense did not apply symmetry")
	}
	back := PackA(d)
	if back.At(1, 3, 0, 2) != 3.5 {
		t.Error("PackA(ToDense()) round trip failed")
	}
}

func TestPackARandomRoundTrip(t *testing.T) {
	n := 6
	rng := rand.New(rand.NewSource(7))
	full := tensor.New(n, n, n, n)
	// Fill with an (i,j)- and (k,l)-symmetric pattern.
	for i := 0; i < n; i++ {
		for j := 0; j <= i; j++ {
			for k := 0; k < n; k++ {
				for l := 0; l <= k; l++ {
					v := rng.NormFloat64()
					full.Set(v, i, j, k, l)
					full.Set(v, j, i, k, l)
					full.Set(v, i, j, l, k)
					full.Set(v, j, i, l, k)
				}
			}
		}
	}
	packed := PackA(full)
	if got := tensor.MaxAbsDiff(packed.ToDense(), full); got != 0 {
		t.Errorf("round-trip max diff = %v, want 0", got)
	}
}

func TestPackedO1(t *testing.T) {
	n := 4
	o := NewPackedO1(n)
	if o.Size() != n*n*Pairs(n) {
		t.Fatalf("Size = %d, want %d", o.Size(), n*n*Pairs(n))
	}
	o.Add(2, 1, 2, 0, 3) // kl canonicalised to (3,0)
	o.Add(3, 1, 2, 3, 0)
	if got := o.At(1, 2, 0, 3); got != 5 {
		t.Errorf("At = %v, want 5 (accumulated across kl orderings)", got)
	}
	// (a, j) is NOT a symmetry group.
	if got := o.At(2, 1, 0, 3); got != 0 {
		t.Errorf("At(2,1,..) = %v, want 0", got)
	}
}

func TestPackedO2(t *testing.T) {
	n := 4
	o := NewPackedO2(n)
	if o.Size() != Pairs(n)*Pairs(n) {
		t.Fatalf("Size = %d", o.Size())
	}
	o.Add(1.5, 2, 3, 1, 0)
	if got := o.At(3, 2, 0, 1); got != 1.5 {
		t.Errorf("symmetric At = %v, want 1.5", got)
	}
	row := o.Row(PairIndex(3, 2))
	if row[PairIndex(1, 0)] != 1.5 {
		t.Error("Row view does not expose stored element")
	}
}

func TestPackedO3(t *testing.T) {
	n := 4
	o := NewPackedO3(n)
	if o.Size() != Pairs(n)*n*n {
		t.Fatalf("Size = %d", o.Size())
	}
	o.Add(2.5, 3, 1, 2, 0)
	if got := o.At(1, 3, 2, 0); got != 2.5 {
		t.Errorf("At with swapped ab = %v, want 2.5", got)
	}
	if got := o.At(3, 1, 0, 2); got != 0 {
		t.Errorf("(c,l) must not be symmetric; At = %v, want 0", got)
	}
}

func TestPackedCRoundTrip(t *testing.T) {
	n := 5
	c := NewPackedC(n)
	c.Add(4.5, 4, 2, 3, 3)
	for _, idx := range [][4]int{{4, 2, 3, 3}, {2, 4, 3, 3}} {
		if got := c.At(idx[0], idx[1], idx[2], idx[3]); got != 4.5 {
			t.Errorf("At(%v) = %v, want 4.5", idx, got)
		}
	}
	d := c.ToDense()
	back := PackC(d)
	if MaxAbsDiffC(c, back) != 0 {
		t.Error("PackC(ToDense()) round trip failed")
	}
}

func TestMaxAbsDiffC(t *testing.T) {
	a, b := NewPackedC(3), NewPackedC(3)
	a.Add(1, 2, 1, 0, 0)
	b.Add(3, 2, 1, 0, 0)
	if got := MaxAbsDiffC(a, b); got != 2 {
		t.Errorf("MaxAbsDiffC = %v, want 2", got)
	}
	defer func() {
		if recover() == nil {
			t.Error("extent mismatch did not panic")
		}
	}()
	MaxAbsDiffC(a, NewPackedC(4))
}

func TestExactSizesMatchContainers(t *testing.T) {
	for _, n := range []int{1, 2, 3, 5, 8} {
		s := ExactSizes(n, 1)
		if int64(NewPackedA(n).Size()) != s.A {
			t.Errorf("n=%d: |A| container %d != formula %d", n, NewPackedA(n).Size(), s.A)
		}
		if int64(NewPackedO1(n).Size()) != s.O1 {
			t.Errorf("n=%d: |O1| container %d != formula %d", n, NewPackedO1(n).Size(), s.O1)
		}
		if int64(NewPackedO2(n).Size()) != s.O2 {
			t.Errorf("n=%d: |O2| mismatch", n)
		}
		if int64(NewPackedO3(n).Size()) != s.O3 {
			t.Errorf("n=%d: |O3| mismatch", n)
		}
		if int64(NewPackedC(n).Size()) != s.C {
			t.Errorf("n=%d: |C| mismatch", n)
		}
	}
}

func TestPaperSizesTable1(t *testing.T) {
	// Table 1: A=n^4/4, O1=n^4/2, O2=n^4/4, O3=n^4/2, C=n^4/(4s).
	s := PaperSizes(100, 1)
	n4 := int64(100 * 100 * 100 * 100)
	if s.A != n4/4 || s.O1 != n4/2 || s.O2 != n4/4 || s.O3 != n4/2 || s.C != n4/4 {
		t.Errorf("PaperSizes = %+v", s)
	}
	sp := PaperSizes(100, 4)
	if sp.C != n4/16 {
		t.Errorf("spatial C = %d, want %d", sp.C, n4/16)
	}
	if sp.A != s.A || sp.O1 != s.O1 {
		t.Error("spatial symmetry must only shrink C")
	}
}

func TestExactApproachesPaperSizes(t *testing.T) {
	// For large n, exact packed sizes approach the Table 1 asymptotics.
	n := 500
	e, p := ExactSizes(n, 1), PaperSizes(n, 1)
	ratio := float64(e.A) / float64(p.A)
	if ratio < 1.0 || ratio > 1.01 {
		t.Errorf("|A| exact/paper = %v, want within [1, 1.01]", ratio)
	}
	if e.MaxIntermediate() != e.O1 && e.MaxIntermediate() != e.O3 {
		t.Error("largest intermediate should be O1 or O3")
	}
	if e.Total() <= 0 {
		t.Error("Total() must be positive")
	}
}

func TestSizesSpatialFactorSanitised(t *testing.T) {
	if got := ExactSizes(4, 0).C; got != ExactSizes(4, 1).C {
		t.Errorf("s=0 should clamp to 1, got C=%d", got)
	}
	if got := PaperSizes(4, -3).C; got != PaperSizes(4, 1).C {
		t.Errorf("negative s should clamp to 1, got C=%d", got)
	}
}
