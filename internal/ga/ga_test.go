package ga

import (
	"errors"
	"math"
	"sync/atomic"
	"testing"

	"fourindex/internal/cluster"
	"fourindex/internal/metrics"
	"fourindex/internal/tile"
)

func newExec(t *testing.T, procs int) *Runtime {
	t.Helper()
	rt, err := NewRuntime(Config{Procs: procs, Mode: Execute})
	if err != nil {
		t.Fatal(err)
	}
	return rt
}

func TestNewRuntimeValidation(t *testing.T) {
	if _, err := NewRuntime(Config{Procs: 0}); err == nil {
		t.Error("zero procs should error")
	}
	rt := newExec(t, 4)
	if rt.Procs() != 4 || rt.Mode() != Execute {
		t.Error("runtime config not reflected")
	}
	if Execute.String() != "execute" || Cost.String() != "cost" {
		t.Error("Mode.String() wrong")
	}
}

func TestCreatePutGetRoundTrip(t *testing.T) {
	rt := newExec(t, 3)
	a, err := rt.Create("A", 10, 12, 4, 5, tile.RoundRobin)
	if err != nil {
		t.Fatal(err)
	}
	err = rt.Parallel(func(p *Proc) {
		if p.ID() != 0 {
			return
		}
		buf := make([]float64, 6)
		for i := range buf {
			buf[i] = float64(i + 1)
		}
		// Patch crossing tile boundaries: rows 2..4, cols 3..6.
		p.Put(a, 2, 4, 3, 6, buf, 3)
	})
	if err != nil {
		t.Fatal(err)
	}
	err = rt.Parallel(func(p *Proc) {
		if p.ID() != 2 {
			return
		}
		got := make([]float64, 6)
		p.Get(a, 2, 4, 3, 6, got, 3)
		for i := range got {
			if got[i] != float64(i+1) {
				t.Errorf("got[%d] = %v, want %d", i, got[i], i+1)
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	rt.Destroy(a)
}

func TestGetWithLargerLeadingDimension(t *testing.T) {
	rt := newExec(t, 1)
	a, _ := rt.Create("A", 4, 4, 2, 2, tile.RoundRobin)
	_ = rt.Parallel(func(p *Proc) {
		buf := []float64{1, 2, 3, 4}
		p.Put(a, 0, 2, 0, 2, buf, 2)
		out := make([]float64, 2*5)
		p.Get(a, 0, 2, 0, 2, out, 5)
		if out[0] != 1 || out[1] != 2 || out[5] != 3 || out[6] != 4 {
			t.Errorf("strided get wrong: %v", out)
		}
	})
}

func TestAccAccumulatesConcurrently(t *testing.T) {
	rt := newExec(t, 8)
	a, _ := rt.Create("C", 6, 6, 3, 3, tile.RoundRobin)
	err := rt.Parallel(func(p *Proc) {
		buf := make([]float64, 36)
		for i := range buf {
			buf[i] = 1
		}
		p.Acc(a, 0, 6, 0, 6, 1, buf, 6)
	})
	if err != nil {
		t.Fatal(err)
	}
	all := a.ReadAll()
	for i, v := range all {
		if v != 8 {
			t.Fatalf("element %d = %v, want 8 (one per process)", i, v)
		}
	}
}

func TestAccAlpha(t *testing.T) {
	rt := newExec(t, 1)
	a, _ := rt.Create("C", 2, 2, 2, 2, tile.RoundRobin)
	_ = rt.Parallel(func(p *Proc) {
		buf := []float64{1, 2, 3, 4}
		p.Acc(a, 0, 2, 0, 2, 2.5, buf, 2)
	})
	want := []float64{2.5, 5, 7.5, 10}
	for i, v := range a.ReadAll() {
		if v != want[i] {
			t.Errorf("elem %d = %v, want %v", i, v, want[i])
		}
	}
}

func TestRemoteVsIntraAccounting(t *testing.T) {
	rt := newExec(t, 2)
	// 2 row tiles, round robin: tile row 0 -> proc 0, tile row 1 -> proc 1.
	a, _ := rt.Create("A", 4, 2, 2, 2, tile.RoundRobin)
	err := rt.Parallel(func(p *Proc) {
		if p.ID() != 0 {
			return
		}
		buf := make([]float64, 8)
		p.Put(a, 0, 4, 0, 2, buf, 2) // rows 0-1 local, rows 2-3 remote
	})
	if err != nil {
		t.Fatal(err)
	}
	c0 := rt.ProcCounters(0)
	if got := c0.Stores(metrics.LevelIntra); got != 4 {
		t.Errorf("intra stores = %d, want 4", got)
	}
	if got := c0.Stores(metrics.LevelGlobal); got != 4 {
		t.Errorf("remote stores = %d, want 4", got)
	}
	if rt.CommVolume() != 4 || rt.IntraVolume() != 4 {
		t.Errorf("volumes comm=%d intra=%d", rt.CommVolume(), rt.IntraVolume())
	}
}

func TestOwnershipHelpers(t *testing.T) {
	rt := newExec(t, 3)
	a, _ := rt.Create("A", 9, 9, 3, 3, tile.RoundRobin)
	// 3x3 tiles; linear id = tr*3+tc; owner = id % 3.
	if a.TileOwner(0, 0) != 0 || a.TileOwner(0, 1) != 1 || a.TileOwner(1, 0) != 0 {
		t.Error("TileOwner mismatch")
	}
	if a.OwnerOf(4, 7) != a.TileOwner(1, 2) {
		t.Error("OwnerOf disagrees with TileOwner")
	}
	if a.Bytes() != 9*9*8 {
		t.Errorf("Bytes = %d", a.Bytes())
	}
}

func TestGlobalMemoryEnforcement(t *testing.T) {
	rt, _ := NewRuntime(Config{Procs: 1, Mode: Execute, GlobalMemBytes: 1000})
	a, err := rt.Create("A", 10, 10, 5, 5, tile.RoundRobin) // 800 B
	if err != nil {
		t.Fatal(err)
	}
	if _, err := rt.Create("B", 10, 10, 5, 5, tile.RoundRobin); !errors.Is(err, ErrGlobalOOM) {
		t.Errorf("expected ErrGlobalOOM, got %v", err)
	}
	rt.Destroy(a)
	// After destroy the capacity is free again.
	b, err := rt.Create("B", 10, 10, 5, 5, tile.RoundRobin)
	if err != nil {
		t.Fatal(err)
	}
	rt.Destroy(b)
	if rt.GlobalBytes() != 0 || rt.LiveArrays() != 0 {
		t.Error("memory not released")
	}
	if rt.PeakGlobalBytes() != 800 {
		t.Errorf("peak = %d, want 800", rt.PeakGlobalBytes())
	}
}

func TestLocalMemoryEnforcement(t *testing.T) {
	rt, _ := NewRuntime(Config{Procs: 1, Mode: Execute, LocalMemBytes: 80})
	err := rt.Parallel(func(p *Proc) {
		b1 := p.MustAllocLocal(5) // 40 B
		if b1.Data == nil || b1.Words() != 5 {
			t.Error("execute-mode buffer missing data")
		}
		if _, err := p.AllocLocal(6); !errors.Is(err, ErrLocalOOM) {
			t.Errorf("expected ErrLocalOOM, got %v", err)
		}
		p.FreeLocal(b1)
		b2 := p.MustAllocLocal(10) // exactly 80 B
		p.FreeLocal(b2)
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := rt.ProcCounters(0).Peak(); got != 10 {
		t.Errorf("local peak = %d elements, want 10", got)
	}
}

func TestMustAllocLocalPanicsToError(t *testing.T) {
	rt, _ := NewRuntime(Config{Procs: 2, Mode: Execute, LocalMemBytes: 8})
	err := rt.Parallel(func(p *Proc) {
		p.MustAllocLocal(100)
	})
	if !errors.Is(err, ErrLocalOOM) {
		t.Errorf("Parallel should surface MustAllocLocal failure, got %v", err)
	}
}

func TestParallelPanicPoisonsBarrier(t *testing.T) {
	rt := newExec(t, 3)
	err := rt.Parallel(func(p *Proc) {
		if p.ID() == 1 {
			panic("boom")
		}
		p.Barrier() // would deadlock without poisoning
	})
	if err == nil {
		t.Fatal("expected error from panicking process")
	}
	// Runtime remains usable after a failed region.
	if err := rt.Parallel(func(p *Proc) { p.Barrier() }); err != nil {
		t.Fatalf("runtime unusable after failure: %v", err)
	}
}

func TestBarrierSynchronisesClocks(t *testing.T) {
	run, err := cluster.SystemB().Configure(4, 28)
	if err != nil {
		t.Fatal(err)
	}
	rt, _ := NewRuntime(Config{Procs: 4, Mode: Cost, Run: &run})
	err = rt.Parallel(func(p *Proc) {
		p.Compute(int64(p.ID()) * 1e9) // unequal work
		p.Barrier()
		c := p.Clock()
		want := run.ComputeSeconds(3e9)
		if math.Abs(c-want) > 1e-12 {
			t.Errorf("proc %d clock = %v, want max %v", p.ID(), c, want)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if rt.Elapsed() <= 0 {
		t.Error("Elapsed should be positive")
	}
}

func TestCostModeAccountsWithoutData(t *testing.T) {
	run, _ := cluster.SystemA().Configure(2, 8)
	rt, _ := NewRuntime(Config{Procs: 2, Mode: Cost, Run: &run})
	// A deliberately huge array: must not allocate element storage.
	a, err := rt.Create("big", 1_000_000, 1_000_000, 10_000, 10_000, tile.RoundRobin)
	if err != nil {
		t.Fatal(err)
	}
	err = rt.Parallel(func(p *Proc) {
		if p.ID() == 0 {
			p.Put(a, 0, 20000, 0, 5, nil, 0)
			p.Get(a, 0, 100, 0, 100, nil, 0)
		}
		p.Compute(12345)
	})
	if err != nil {
		t.Fatal(err)
	}
	tot := rt.Totals()
	if tot.Flops != 2*12345 {
		t.Errorf("flops = %d", tot.Flops)
	}
	moved := rt.CommVolume() + rt.IntraVolume()
	if moved != 20000*5+100*100 {
		t.Errorf("moved = %d elements", moved)
	}
	if rt.Elapsed() <= 0 {
		t.Error("cost mode should advance simulated time")
	}
	rt.Destroy(a)
}

func TestStrictReadBeforeWrite(t *testing.T) {
	rt, _ := NewRuntime(Config{Procs: 1, Mode: Execute, Strict: true})
	a, _ := rt.Create("A", 4, 4, 2, 2, tile.RoundRobin)
	err := rt.Parallel(func(p *Proc) {
		buf := make([]float64, 4)
		p.Get(a, 0, 2, 0, 2, buf, 2)
	})
	if err == nil {
		t.Fatal("strict mode should reject Get of never-written tile")
	}
	err = rt.Parallel(func(p *Proc) {
		buf := []float64{1, 2, 3, 4}
		p.Put(a, 0, 2, 0, 2, buf, 2)
		p.Get(a, 0, 2, 0, 2, buf, 2)
	})
	if err != nil {
		t.Fatalf("Get after Put should pass strict mode: %v", err)
	}
}

func TestDoubleDestroyTypedError(t *testing.T) {
	rt := newExec(t, 1)
	a, _ := rt.Create("A", 2, 2, 2, 2, tile.RoundRobin)
	if err := rt.Destroy(a); err != nil {
		t.Fatalf("first destroy: %v", err)
	}
	live := rt.LiveArrays()
	err := rt.Destroy(a)
	var dd *DoubleDestroyError
	if !errors.As(err, &dd) {
		t.Fatalf("double destroy returned %v, want *DoubleDestroyError", err)
	}
	if dd.Name != "A" {
		t.Errorf("DoubleDestroyError.Name = %q, want \"A\"", dd.Name)
	}
	if got := rt.LiveArrays(); got != live {
		t.Errorf("double destroy changed live-array count: %d -> %d", live, got)
	}
}

func TestUseAfterDestroyPanics(t *testing.T) {
	rt := newExec(t, 1)
	a, _ := rt.Create("A", 2, 2, 2, 2, tile.RoundRobin)
	rt.Destroy(a)
	err := rt.Parallel(func(p *Proc) {
		p.Get(a, 0, 1, 0, 1, make([]float64, 1), 1)
	})
	if err == nil {
		t.Error("Get after destroy should fail")
	}
}

func TestInvalidPatchPanics(t *testing.T) {
	rt := newExec(t, 1)
	a, _ := rt.Create("A", 4, 4, 2, 2, tile.RoundRobin)
	cases := [][4]int{{0, 5, 0, 4}, {2, 2, 0, 4}, {-1, 1, 0, 4}, {0, 4, 3, 2}}
	for _, c := range cases {
		err := rt.Parallel(func(p *Proc) {
			p.Get(a, c[0], c[1], c[2], c[3], make([]float64, 100), 10)
		})
		if err == nil {
			t.Errorf("patch %v should fail", c)
		}
	}
}

func TestCreateInvalidShape(t *testing.T) {
	rt := newExec(t, 1)
	if _, err := rt.Create("A", 0, 4, 2, 2, tile.RoundRobin); err == nil {
		t.Error("zero rows should error")
	}
}

func TestParallelRunsAllProcs(t *testing.T) {
	rt := newExec(t, 7)
	var n atomic.Int32
	if err := rt.Parallel(func(p *Proc) { n.Add(1) }); err != nil {
		t.Fatal(err)
	}
	if n.Load() != 7 {
		t.Errorf("ran %d procs, want 7", n.Load())
	}
}

func TestReadAllMatchesPuts(t *testing.T) {
	rt := newExec(t, 4)
	a, _ := rt.Create("A", 5, 7, 2, 3, tile.RoundRobin)
	err := rt.Parallel(func(p *Proc) {
		// Each proc writes its own rows r where r % procs == id.
		for r := p.ID(); r < 5; r += p.Procs() {
			row := make([]float64, 7)
			for c := range row {
				row[c] = float64(r*10 + c)
			}
			p.Put(a, r, r+1, 0, 7, row, 7)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	all := a.ReadAll()
	for r := 0; r < 5; r++ {
		for c := 0; c < 7; c++ {
			if all[r*7+c] != float64(r*10+c) {
				t.Fatalf("(%d,%d) = %v", r, c, all[r*7+c])
			}
		}
	}
}

// Fault injection: a panic deep inside one work unit of a large parallel
// region must surface as a single error, leave the runtime reusable, and
// leak no arrays.
func TestFaultInjectionMidSchedule(t *testing.T) {
	rt := newExec(t, 8)
	a, _ := rt.CreateTiled("T", grids(16, 4, 2), nil, tile.RoundRobin)
	err := rt.Parallel(func(p *Proc) {
		for ti := 0; ti < 4; ti++ {
			for tj := 0; tj < 4; tj++ {
				if a.Owner(ti, tj) != p.ID() {
					continue
				}
				if ti == 2 && tj == 3 {
					panic("injected fault")
				}
				buf := make([]float64, a.TileWords([]int{ti, tj}))
				p.PutT(a, buf, ti, tj)
			}
		}
	})
	if err == nil {
		t.Fatal("injected fault not surfaced")
	}
	rt.DestroyTiled(a)
	if rt.LiveArrays() != 0 {
		t.Errorf("leaked arrays: %d", rt.LiveArrays())
	}
	// Runtime still functional.
	b, err := rt.CreateTiled("U", grids(4, 2, 2), nil, tile.RoundRobin)
	if err != nil {
		t.Fatal(err)
	}
	if err := rt.Parallel(func(p *Proc) { p.Barrier() }); err != nil {
		t.Fatalf("runtime unusable after fault: %v", err)
	}
	rt.DestroyTiled(b)
}
