package ga

import (
	"fmt"
	"sync"

	"fourindex/internal/metrics"
	"fourindex/internal/trace"
)

// This file implements the nonblocking transfer verbs (NbGetT, NbPutT,
// NbAccT) and their typed completion handles, the analogue of Global
// Arrays' ga_nbget/ga_nbacc that production NWChem uses to hide remote
// latency behind computation (the paper's Section 7 schedules are
// written against the blocking API purely for exposition).
//
// Cost model. Each process owns one simulated communication channel.
// Issuing a nonblocking transfer reserves the channel from
// max(clock, channelFree) for the transfer's duration and returns
// immediately — the clock does not advance at issue. At Wait the
// process is charged only the exposed part of the transfer,
//
//	exposed = max(arrival - now, (1 - e) * duration)
//
// where e is Config.OverlapEfficiency: compute issued between the
// NbGetT and its Wait hides the in-flight time, so the clock advances
// by max(comm, compute) over the overlap window instead of their sum.
// Transfer volume, message counts, and fault points are identical to
// the blocking verbs; only the time charge moves.
//
// Execute model. Put/Acc payloads are copied synchronously into a
// handle-owned staging buffer at issue (the caller may reuse its buffer
// immediately); the actual tile read or update is enqueued, by value,
// on the issuing process's long-lived apply worker (started by Parallel
// for overlapped Execute regions), so deferred operations apply in
// exactly the per-process program order the blocking verbs would have
// used — combined with the schedules' single-writer-per-tile ownership
// this keeps results bitwise identical to blocking execution. One
// worker per process, fed a buffered channel of plain request structs,
// replaces the earlier goroutine-per-operation chain whose closure,
// channel and goroutine allocations dominated overlap-mode allocation
// volume. Staging storage comes from the runtime's buffer pool but is
// owned by the handle until Wait, so a pooled buffer is never reused
// while a transfer is in flight.
//
// Fault injection fires at Wait, not issue: Waits occur in per-process
// program order, so the (proc, seq) stream a fault plan keys on is
// deterministic and seeded chaos plans replay identically with overlap
// enabled.
//
// When Config.Overlap is false the nonblocking verbs degrade to their
// blocking equivalents at issue time — same clocks, same trace events,
// same fault points — so schedules are written against this API
// unconditionally and overlap-off runs stay byte-identical to the
// pre-nonblocking runtime.

// nbOp classifies a nonblocking transfer.
type nbOp uint8

const (
	nbGet nbOp = iota
	nbPut
	nbAcc
)

// faultName is the fault-point operation label, matching the blocking
// verbs so trace labels stay comparable.
func (o nbOp) faultName() string {
	switch o {
	case nbPut:
		return "Put"
	case nbAcc:
		return "Acc"
	default:
		return "Get"
	}
}

// issueKind is the trace event kind emitted at issue.
func (o nbOp) issueKind() trace.Kind {
	switch o {
	case nbPut:
		return trace.KindNbPut
	case nbAcc:
		return trace.KindNbAcc
	default:
		return trace.KindNbGet
	}
}

// Handle is the typed completion handle of one nonblocking transfer.
// It must reach Wait (or WaitAll) on the issuing process before the
// enclosing Parallel region ends — region exit checks and the
// nbdiscipline analyzer enforces the pairing statically.
type Handle struct {
	op    nbOp
	name  string
	proc  int
	words int64
	remote bool

	// Simulated-time fields: dur is the in-flight transfer time,
	// arrival the simulated instant the transfer completes on the
	// process's comm channel.
	dur     float64
	arrival float64

	// Execute-mode fields: seq is this operation's position in the
	// issuing process's apply-worker stream (0 when no deferred apply
	// was enqueued); staging holds a Put/Acc payload until the worker
	// lands it. stagingWords is the local-memory ledger charge released
	// at Wait.
	seq          int64
	staging      []float64
	stagingWords int64

	// noop marks degraded (overlap-off) and sparse-tile handles whose
	// Wait does nothing.
	noop   bool
	waited bool
}

// degraded is the shared handle returned when Config.Overlap is off or
// the target tile is symmetry-forbidden: the operation (if any) already
// completed at issue, so Wait is a no-op.
var degraded = &Handle{noop: true}

// NbGetT starts a nonblocking fetch of the tile at coords into buf and
// returns its handle. buf must hold the whole tile (nil in Cost mode)
// and must not be read — or freed — until Wait returns; the deferred
// copy may land any time up to then.
func (p *Proc) NbGetT(a *TiledArray, buf []float64, coords ...int) *Handle {
	if !p.rt.cfg.Overlap {
		p.GetT(a, buf, coords...)
		return degraded
	}
	a.checkAlive("NbGetT")
	id := a.canonicalID(coords)
	words := a.TileWords(coords)
	if a.stored != nil && !a.stored[id] {
		// Symmetry-forbidden block: reads are free zeros, like GetT.
		if p.rt.cfg.Mode == Execute {
			if len(buf) < words {
				panic(fmt.Sprintf("ga: NbGetT buffer %d < tile words %d", len(buf), words))
			}
			for i := 0; i < words; i++ {
				buf[i] = 0
			}
		}
		return degraded
	}
	if a.written != nil && !a.written[id].Load() {
		panic(fmt.Sprintf("ga: strict: NbGetT of never-written tile %v of %q", coords, a.Name))
	}
	h := &Handle{op: nbGet, name: a.Name, proc: p.id, words: int64(words)}
	h.remote = p.nbIssue(h, a, id, true)
	if p.rt.cfg.Mode == Execute {
		if len(buf) < words {
			panic(fmt.Sprintf("ga: NbGetT buffer %d < tile words %d", len(buf), words))
		}
		h.seq = p.nbEnqueue(nbApplyReq{a: a, buf: buf, id: id, words: words, get: true})
	}
	p.rt.nbOutstanding[p.id]++
	return h
}

// NbPutT starts a nonblocking overwrite of the tile at coords with buf
// and returns its handle. buf is copied into handle-owned staging
// before NbPutT returns, so the caller may reuse it immediately.
func (p *Proc) NbPutT(a *TiledArray, buf []float64, coords ...int) *Handle {
	return p.nbUpdateT("NbPutT", nbPut, a, 0, buf, coords)
}

// NbAccT starts a nonblocking accumulation of alpha*buf into the tile
// at coords and returns its handle. buf is copied into handle-owned
// staging before NbAccT returns, so the caller may reuse it
// immediately.
func (p *Proc) NbAccT(a *TiledArray, alpha float64, buf []float64, coords ...int) *Handle {
	return p.nbUpdateT("NbAccT", nbAcc, a, alpha, buf, coords)
}

func (p *Proc) nbUpdateT(verb string, op nbOp, a *TiledArray, alpha float64, buf []float64, coords []int) *Handle {
	if !p.rt.cfg.Overlap {
		p.updateT(verb, a, alpha, op == nbAcc, buf, coords)
		return degraded
	}
	a.checkAlive(verb)
	if a.frozen.Load() {
		panic(fmt.Sprintf("ga: %s on frozen tensor %q", verb, a.Name))
	}
	id := a.canonicalID(coords)
	words := a.TileWords(coords)
	if a.stored != nil && !a.stored[id] {
		return degraded // symmetry-forbidden block: writes are no-ops
	}
	h := &Handle{op: op, name: a.Name, proc: p.id, words: int64(words)}
	h.remote = p.nbIssue(h, a, id, false)
	if a.written != nil {
		a.written[id].Store(true)
	}
	// The staging buffer is charged to the issuing process's ledger in
	// both modes, so Cost and Execute report the same peak footprint.
	c := p.Counters()
	if lim := p.rt.cfg.LocalMemBytes; lim > 0 && (c.Current()+int64(words))*8 > lim {
		panic(fmt.Errorf("%w: process %d staging for %s of %q needs %d B, capacity %d B (already using %d B)",
			ErrLocalOOM, p.id, verb, a.Name, int64(words)*8, lim, c.Current()*8))
	}
	c.Alloc(int64(words))
	h.stagingWords = int64(words)
	if p.rt.cfg.Mode == Execute {
		if len(buf) < words {
			panic(fmt.Sprintf("ga: %s buffer %d < tile words %d", verb, len(buf), words))
		}
		h.staging = p.rt.getPooled(int64(words))
		copy(h.staging, buf[:words])
		h.seq = p.nbEnqueue(nbApplyReq{a: a, buf: h.staging, id: id, words: words, acc: op == nbAcc, alpha: alpha})
	}
	p.rt.nbOutstanding[p.id]++
	return h
}

// nbIssue accounts a nonblocking transfer's traffic at issue and
// reserves the process's comm channel for its duration: counters and
// messages are identical to the blocking verbs, but the clock does not
// advance. Returns whether the transfer was remote.
func (p *Proc) nbIssue(h *Handle, a *TiledArray, id int, isLoad bool) bool {
	c := p.Counters()
	remote := false
	var dur float64
	r := p.rt.cfg.Run
	if a.onDisk {
		if isLoad {
			c.AddLoad(metrics.LevelDisk, h.words)
		} else {
			c.AddStore(metrics.LevelDisk, h.words)
		}
		if r != nil {
			dur = r.DiskSeconds(h.words*8) * p.rt.slow[p.id]
		}
	} else {
		remote = a.Dist.Owner(id) != p.id
		lvl := metrics.LevelIntra
		if remote {
			lvl = metrics.LevelGlobal
		}
		if isLoad {
			c.AddLoad(lvl, h.words)
		} else {
			c.AddStore(lvl, h.words)
		}
		if r != nil {
			if remote {
				dur = r.RemoteSeconds(h.words*8) * p.rt.slow[p.id]
			} else {
				dur = r.LocalSeconds(h.words*8) * p.rt.slow[p.id]
			}
		}
	}
	start := p.rt.clocks[p.id]
	if free := p.rt.nbChanFree[p.id]; free > start {
		start = free
	}
	h.dur = dur
	h.arrival = start + dur
	p.rt.nbChanFree[p.id] = h.arrival
	p.rt.traceEmit(h.op.issueKind(), p.id, start, dur, h.name, h.words, remote)
	return remote
}

// nbApplyReq is one deferred Execute-mode tile operation, passed by
// value through the apply worker's channel so enqueueing allocates
// nothing. get selects nbReadTile (buf is the caller's destination);
// otherwise nbApplyTile runs with buf as the handle-owned staging copy.
type nbApplyReq struct {
	a     *TiledArray
	buf   []float64
	id    int
	words int
	alpha float64
	acc   bool
	get   bool
}

// nbApplier is one process's apply worker: a single long-lived
// goroutine draining a FIFO of deferred operations. issued has a single
// writer (the process goroutine); applied is published under mu and
// waited on via cond.
type nbApplier struct {
	ch      chan nbApplyReq
	mu      sync.Mutex
	cond    *sync.Cond
	issued  int64
	applied int64
}

// nbApplierQueue is the apply channel's buffer depth. Deep enough that
// issuing processes rarely block behind in-flight tile copies; shallow
// enough that an abandoned region drains quickly.
const nbApplierQueue = 128

// run drains the apply channel until it is closed, publishing each
// completion for Wait.
func (ap *nbApplier) run(wg *sync.WaitGroup) {
	defer wg.Done()
	for req := range ap.ch {
		if req.get {
			req.a.nbReadTile(req.buf, req.id, req.words)
		} else {
			req.a.nbApplyTile(req.acc, req.alpha, req.buf, req.id, req.words)
		}
		ap.mu.Lock()
		ap.applied++
		ap.cond.Broadcast()
		ap.mu.Unlock()
	}
}

// waitFor blocks until the operation with the given sequence number has
// applied.
func (ap *nbApplier) waitFor(seq int64) {
	ap.mu.Lock()
	for ap.applied < seq {
		ap.cond.Wait()
	}
	ap.mu.Unlock()
}

// nbEnqueue hands req to this process's apply worker and returns its
// sequence number (1-based within the region).
func (p *Proc) nbEnqueue(req nbApplyReq) int64 {
	ap := p.rt.nbAppliers[p.id]
	ap.issued++
	ap.ch <- req
	return ap.issued
}

// startAppliers arms one apply worker per process for an overlapped
// Execute region. Sequence counters restart per region — handles cannot
// outlive the region that issued them.
func (rt *Runtime) startAppliers() {
	if rt.nbAppliers == nil {
		rt.nbAppliers = make([]*nbApplier, rt.cfg.Procs)
		for i := range rt.nbAppliers {
			ap := &nbApplier{}
			ap.cond = sync.NewCond(&ap.mu)
			rt.nbAppliers[i] = ap
		}
	}
	for _, ap := range rt.nbAppliers {
		ap.ch = make(chan nbApplyReq, nbApplierQueue)
		ap.issued, ap.applied = 0, 0
		rt.applierWG.Add(1)
		go ap.run(&rt.applierWG)
	}
}

// stopAppliers closes every apply channel and joins the workers,
// draining any operations a panicking region abandoned.
func (rt *Runtime) stopAppliers() {
	for _, ap := range rt.nbAppliers {
		close(ap.ch)
	}
	rt.applierWG.Wait()
}

// nbReadTile is the deferred Execute-mode tile read, with the same lock
// discipline as GetT (lock-free when frozen).
func (a *TiledArray) nbReadTile(buf []float64, id, words int) {
	if a.frozen.Load() {
		a.copyTile(buf, id, words)
		return
	}
	a.locks[id].RLock()
	a.copyTile(buf, id, words)
	a.locks[id].RUnlock()
}

// nbApplyTile is the deferred Execute-mode tile write, with the same
// lock discipline as PutT/AccT.
func (a *TiledArray) nbApplyTile(acc bool, alpha float64, buf []float64, id, words int) {
	a.locks[id].Lock()
	if a.data[id] == nil {
		a.data[id] = make([]float64, words)
	}
	dst := a.data[id]
	if acc {
		for i := 0; i < words; i++ {
			dst[i] += alpha * buf[i]
		}
	} else {
		copy(dst, buf[:words])
	}
	a.locks[id].Unlock()
}

// Wait completes the transfer on the issuing process: the fault plan is
// consulted here (so retries and crashes fire at Wait, in per-process
// program order), the clock is charged the exposed part of the transfer
// time, and — in Execute mode — the deferred copy is joined and the
// staging buffer released back to the pool. Waiting a handle twice or
// from the wrong process panics. Nil and degraded handles are no-ops.
func (h *Handle) Wait(p *Proc) {
	if h == nil || h.noop {
		return
	}
	if h.proc != p.id {
		panic(fmt.Sprintf("ga: process %d waiting a handle issued by process %d", p.id, h.proc))
	}
	if h.waited {
		panic(fmt.Sprintf("ga: handle for %s of %q waited twice", h.op.faultName(), h.name))
	}
	p.faultPoint(h.op.faultName(), h.name)
	now := p.rt.clocks[p.id]
	exposed := h.arrival - now
	e := p.rt.cfg.OverlapEfficiency
	if e == 0 {
		e = 1
	}
	if floor := (1 - e) * h.dur; exposed < floor {
		exposed = floor
	}
	if exposed < 0 {
		exposed = 0
	}
	p.rt.clocks[p.id] += exposed
	p.rt.commExposed[p.id] += exposed
	overlapped := h.dur - exposed
	if overlapped < 0 {
		overlapped = 0
	}
	p.rt.commOverlapped[p.id] += overlapped
	p.rt.traceEmit(trace.KindWait, p.id, now, exposed, h.name, h.words, h.remote)
	if h.seq > 0 {
		p.rt.nbAppliers[p.id].waitFor(h.seq)
	}
	if h.staging != nil {
		p.rt.putPooled(h.staging)
		h.staging = nil
	}
	if h.stagingWords > 0 {
		p.Counters().Free(h.stagingWords)
	}
	h.waited = true
	p.rt.nbOutstanding[p.id]--
}

// WaitAll waits every handle in order; nil handles are skipped.
func (p *Proc) WaitAll(hs ...*Handle) {
	for _, h := range hs {
		h.Wait(p)
	}
}
