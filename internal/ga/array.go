package ga

import (
	"fmt"
	"sync"
	"sync/atomic"

	"fourindex/internal/tile"
	"fourindex/internal/trace"
)

// Array is a two-dimensional distributed array blocked into data-tiles.
// Rows and columns are tiled independently; the linearised tile index
// (tr * colTiles + tc) is mapped to an owning process by a distribution
// policy. In Execute mode each tile owns real row-major storage.
type Array struct {
	rt    *Runtime
	Name  string
	Rows  int
	Cols  int
	RGrid tile.Grid
	CGrid tile.Grid
	Dist  tile.Dist

	data    [][]float64   // per-tile storage (Execute mode only)
	locks   []sync.Mutex  // per-tile write locks (Execute mode only)
	written []atomic.Bool // per-tile written flags (Strict mode only)

	destroyed atomic.Bool
}

// Create allocates a distributed rows x cols array tiled into
// tileRows x tileCols blocks, distributed with the given policy. It is a
// collective operation performed in sequential (between-region) code and
// charges the aggregate global-memory capacity; exceeding it returns an
// error wrapping ErrGlobalOOM, which reproduces the paper's "Failed"
// out-of-memory configurations.
func (rt *Runtime) Create(name string, rows, cols, tileRows, tileCols int, pol tile.Policy) (*Array, error) {
	if rows <= 0 || cols <= 0 {
		return nil, fmt.Errorf("ga: array %q has non-positive shape %dx%d", name, rows, cols)
	}
	bytes := int64(rows) * int64(cols) * 8
	lim := rt.effectiveGlobalMem()
	rt.mu.Lock()
	if lim > 0 && rt.globalBytes+bytes > lim {
		need := rt.globalBytes + bytes
		rt.mu.Unlock()
		return nil, fmt.Errorf("%w: array %q (%d x %d) needs %d B live (capacity %d B)",
			ErrGlobalOOM, name, rows, cols, need, lim)
	}
	rt.globalBytes += bytes
	if rt.globalBytes > rt.peakGlobal {
		rt.peakGlobal = rt.globalBytes
	}
	rt.liveArrays++
	rt.mu.Unlock()

	rg := tile.NewGrid(rows, tileRows)
	cg := tile.NewGrid(cols, tileCols)
	nt := rg.NumTiles() * cg.NumTiles()
	a := &Array{
		rt:    rt,
		Name:  name,
		Rows:  rows,
		Cols:  cols,
		RGrid: rg,
		CGrid: cg,
		Dist:  tile.NewDist(nt, rt.cfg.Procs, pol, 1),
	}
	if rt.cfg.Mode == Execute {
		a.data = make([][]float64, nt)
		a.locks = make([]sync.Mutex, nt)
		for tr := 0; tr < rg.NumTiles(); tr++ {
			for tc := 0; tc < cg.NumTiles(); tc++ {
				a.data[tr*cg.NumTiles()+tc] = make([]float64, rg.Width(tr)*cg.Width(tc))
			}
		}
	}
	if rt.cfg.Strict {
		a.written = make([]atomic.Bool, nt)
	}
	rt.traceEmit(trace.KindCreate, trace.SeqProc, rt.Elapsed(), 0, name, int64(rows)*int64(cols), false)
	return a, nil
}

// DoubleDestroyError reports a Destroy of an array that was already
// destroyed — always a schedule bug (a lost ownership handoff), but one
// the caller should surface as an error rather than a crash: the
// destroyed flag is decided by a single atomic swap, so exactly one of
// two racing Destroys receives it.
type DoubleDestroyError struct {
	Name string
}

// Error describes the doubly destroyed array.
func (e *DoubleDestroyError) Error() string {
	return fmt.Sprintf("ga: array %q destroyed twice", e.Name)
}

// Destroy releases the array's global memory. A second Destroy of the
// same array returns a *DoubleDestroyError and changes nothing.
func (rt *Runtime) Destroy(a *Array) error {
	if a.destroyed.Swap(true) {
		return &DoubleDestroyError{Name: a.Name}
	}
	rt.mu.Lock()
	rt.globalBytes -= int64(a.Rows) * int64(a.Cols) * 8
	rt.liveArrays--
	rt.mu.Unlock()
	a.data = nil
	rt.traceEmit(trace.KindDestroy, trace.SeqProc, rt.Elapsed(), 0, a.Name, int64(a.Rows)*int64(a.Cols), false)
	return nil
}

// Bytes returns the array's global-memory footprint.
func (a *Array) Bytes() int64 { return int64(a.Rows) * int64(a.Cols) * 8 }

// tileID linearises a (row-tile, col-tile) pair.
func (a *Array) tileID(tr, tc int) int { return tr*a.CGrid.NumTiles() + tc }

// TileOwner returns the process owning tile (tr, tc).
func (a *Array) TileOwner(tr, tc int) int { return a.Dist.Owner(a.tileID(tr, tc)) }

// OwnerOf returns the process owning the tile containing element (r, c).
func (a *Array) OwnerOf(r, c int) int {
	return a.TileOwner(a.RGrid.TileOf(r), a.CGrid.TileOf(c))
}

// checkPatch validates a patch and the caller's buffer.
func (a *Array) checkPatch(op string, r0, r1, c0, c1 int, buf []float64, ld int) {
	if a.destroyed.Load() {
		panic(fmt.Sprintf("ga: %s on destroyed array %q", op, a.Name))
	}
	if r0 < 0 || c0 < 0 || r1 > a.Rows || c1 > a.Cols || r0 >= r1 || c0 >= c1 {
		panic(fmt.Sprintf("ga: %s patch [%d:%d,%d:%d] invalid for %q (%dx%d)",
			op, r0, r1, c0, c1, a.Name, a.Rows, a.Cols))
	}
	if a.rt.cfg.Mode == Execute {
		w := c1 - c0
		if ld < w {
			panic(fmt.Sprintf("ga: %s buffer leading dimension %d < patch width %d", op, ld, w))
		}
		need := (r1-r0-1)*ld + w
		if len(buf) < need {
			panic(fmt.Sprintf("ga: %s buffer too small: %d < %d", op, len(buf), need))
		}
	}
}

// patchOp visits every tile overlapping the patch and invokes f with the
// tile id and overlap rectangle (absolute coordinates).
func (a *Array) patchOp(r0, r1, c0, c1 int, f func(id, pr0, pr1, pc0, pc1 int)) {
	tr0, tr1 := a.RGrid.TileOf(r0), a.RGrid.TileOf(r1-1)
	tc0, tc1 := a.CGrid.TileOf(c0), a.CGrid.TileOf(c1-1)
	for tr := tr0; tr <= tr1; tr++ {
		rlo, rhi := a.RGrid.Bounds(tr)
		if rlo < r0 {
			rlo = r0
		}
		if rhi > r1 {
			rhi = r1
		}
		for tc := tc0; tc <= tc1; tc++ {
			clo, chi := a.CGrid.Bounds(tc)
			if clo < c0 {
				clo = c0
			}
			if chi > c1 {
				chi = c1
			}
			f(a.tileID(tr, tc), rlo, rhi, clo, chi)
		}
	}
}

// Get copies the patch [r0:r1, c0:c1) into buf (row-major, leading
// dimension ld). Remote tile fragments are charged as inter-node
// communication. In Cost mode only accounting happens and buf may be nil.
func (p *Proc) Get(a *Array, r0, r1, c0, c1 int, buf []float64, ld int) {
	a.checkPatch("Get", r0, r1, c0, c1, buf, ld)
	p.faultPoint("Get", a.Name)
	exec := a.rt.cfg.Mode == Execute
	start := p.Clock()
	var total int64
	anyRemote := false
	a.patchOp(r0, r1, c0, c1, func(id, pr0, pr1, pc0, pc1 int) {
		if a.written != nil && !a.written[id].Load() {
			panic(fmt.Sprintf("ga: strict: Get of never-written tile %d of %q", id, a.Name))
		}
		elems := int64(pr1-pr0) * int64(pc1-pc0)
		remote := a.Dist.Owner(id) != p.id
		p.chargeTransfer(remote, elems, true)
		total += elems
		anyRemote = anyRemote || remote
		if !exec {
			return
		}
		a.locks[id].Lock()
		tr, tc := id/a.CGrid.NumTiles(), id%a.CGrid.NumTiles()
		rlo, _ := a.RGrid.Bounds(tr)
		clo, _ := a.CGrid.Bounds(tc)
		tw := a.CGrid.Width(tc)
		td := a.data[id]
		for r := pr0; r < pr1; r++ {
			src := td[(r-rlo)*tw+(pc0-clo) : (r-rlo)*tw+(pc1-clo)]
			dst := buf[(r-r0)*ld+(pc0-c0) : (r-r0)*ld+(pc1-c0)]
			copy(dst, src)
		}
		a.locks[id].Unlock()
	})
	p.rt.traceEmit(trace.KindGet, p.id, start, p.Clock()-start, a.Name, total, anyRemote)
}

// Put writes buf into the patch, overwriting previous contents.
func (p *Proc) Put(a *Array, r0, r1, c0, c1 int, buf []float64, ld int) {
	p.update("Put", a, r0, r1, c0, c1, 0, buf, ld)
}

// Acc atomically accumulates alpha*buf into the patch (GA_Acc).
func (p *Proc) Acc(a *Array, r0, r1, c0, c1 int, alpha float64, buf []float64, ld int) {
	p.update("Acc", a, r0, r1, c0, c1, alpha, buf, ld)
}

// update implements Put (alpha == 0 sentinel => overwrite) and Acc.
func (p *Proc) update(op string, a *Array, r0, r1, c0, c1 int, alpha float64, buf []float64, ld int) {
	a.checkPatch(op, r0, r1, c0, c1, buf, ld)
	p.faultPoint(op, a.Name)
	exec := a.rt.cfg.Mode == Execute
	acc := op == "Acc"
	start := p.Clock()
	var total int64
	anyRemote := false
	a.patchOp(r0, r1, c0, c1, func(id, pr0, pr1, pc0, pc1 int) {
		elems := int64(pr1-pr0) * int64(pc1-pc0)
		remote := a.Dist.Owner(id) != p.id
		p.chargeTransfer(remote, elems, false)
		total += elems
		anyRemote = anyRemote || remote
		if a.written != nil {
			a.written[id].Store(true)
		}
		if !exec {
			return
		}
		a.locks[id].Lock()
		tr, tc := id/a.CGrid.NumTiles(), id%a.CGrid.NumTiles()
		rlo, _ := a.RGrid.Bounds(tr)
		clo, _ := a.CGrid.Bounds(tc)
		tw := a.CGrid.Width(tc)
		td := a.data[id]
		for r := pr0; r < pr1; r++ {
			src := buf[(r-r0)*ld+(pc0-c0) : (r-r0)*ld+(pc1-c0)]
			dst := td[(r-rlo)*tw+(pc0-clo) : (r-rlo)*tw+(pc1-clo)]
			if acc {
				for i, v := range src {
					dst[i] += alpha * v
				}
			} else {
				copy(dst, src)
			}
		}
		a.locks[id].Unlock()
	})
	kind := trace.KindPut
	if acc {
		kind = trace.KindAcc
	}
	p.rt.traceEmit(kind, p.id, start, p.Clock()-start, a.Name, total, anyRemote)
}

// ReadAll copies the entire array into a dense row-major slice. Sequential
// (between-region) helper for verification; free of accounting.
func (a *Array) ReadAll() []float64 {
	if a.rt.cfg.Mode != Execute {
		panic("ga: ReadAll requires Execute mode")
	}
	out := make([]float64, a.Rows*a.Cols)
	for tr := 0; tr < a.RGrid.NumTiles(); tr++ {
		rlo, rhi := a.RGrid.Bounds(tr)
		for tc := 0; tc < a.CGrid.NumTiles(); tc++ {
			clo, chi := a.CGrid.Bounds(tc)
			td := a.data[a.tileID(tr, tc)]
			tw := chi - clo
			for r := rlo; r < rhi; r++ {
				copy(out[r*a.Cols+clo:r*a.Cols+chi], td[(r-rlo)*tw:(r-rlo)*tw+tw])
			}
		}
	}
	return out
}
