package ga

import "fourindex/internal/metrics"

// PhaseStat aggregates the resources one named schedule phase consumed.
// Phases with the same name (e.g. the per-slab contractions of a fused
// schedule) accumulate into a single row.
type PhaseStat struct {
	Name          string
	Seconds       float64 // simulated wall time attributed to the phase
	Flops         int64
	CommElements  int64 // inter-node traffic
	IntraElements int64 // same-node copies
	Messages      int64
	// ExposedCommSeconds is transfer time processes waited for inside
	// the phase; OverlapCommSeconds is transfer time nonblocking
	// operations hid behind compute (see internal/ga's overlap model).
	ExposedCommSeconds float64
	OverlapCommSeconds float64
}

// phaseTracker accumulates per-phase deltas between sequential-section
// markers.
type phaseTracker struct {
	current string
	mark    phaseMark
	order   []string
	stats   map[string]*PhaseStat
}

type phaseMark struct {
	clock   float64
	flops   int64
	comm    int64
	intra   int64
	msgs    int64
	exposed float64
	overlap float64
}

// BeginPhase marks the start of a named schedule phase. It must be
// called from sequential (between-region) code; the previous phase, if
// any, is closed and its resource deltas accumulated. Repeated names
// accumulate into one row. When a tracer is attached, each phase also
// becomes a trace span (repeated names become separate spans there, so
// per-slab iterations of a fused schedule stay distinguishable).
func (rt *Runtime) BeginPhase(name string) {
	rt.closePhase()
	if rt.phases == nil {
		rt.phases = &phaseTracker{stats: make(map[string]*PhaseStat)}
	}
	rt.phases.current = name
	rt.phases.mark = rt.phaseMarkNow()
	rt.TraceSpan(name)
}

// EndPhase closes the open phase without starting another.
func (rt *Runtime) EndPhase() { rt.closePhase() }

func (rt *Runtime) phaseMarkNow() phaseMark {
	var m phaseMark
	m.clock = rt.Elapsed()
	for _, c := range rt.counters {
		m.flops += c.Flops()
		m.comm += c.Traffic(metrics.LevelGlobal)
		m.intra += c.Traffic(metrics.LevelIntra)
		m.msgs += c.Messages(metrics.LevelGlobal) + c.Messages(metrics.LevelIntra)
	}
	for i := range rt.commExposed {
		m.exposed += rt.commExposed[i]
		m.overlap += rt.commOverlapped[i]
	}
	return m
}

func (rt *Runtime) closePhase() {
	pt := rt.phases
	if pt == nil || pt.current == "" {
		return
	}
	now := rt.phaseMarkNow()
	st, ok := pt.stats[pt.current]
	if !ok {
		st = &PhaseStat{Name: pt.current}
		pt.stats[pt.current] = st
		pt.order = append(pt.order, pt.current)
	}
	st.Seconds += now.clock - pt.mark.clock
	st.Flops += now.flops - pt.mark.flops
	st.CommElements += now.comm - pt.mark.comm
	st.IntraElements += now.intra - pt.mark.intra
	st.Messages += now.msgs - pt.mark.msgs
	st.ExposedCommSeconds += now.exposed - pt.mark.exposed
	st.OverlapCommSeconds += now.overlap - pt.mark.overlap
	pt.current = ""
	rt.TraceSpanEnd()
}

// Phases returns the accumulated per-phase statistics in first-seen
// order, closing any open phase.
func (rt *Runtime) Phases() []PhaseStat {
	rt.closePhase()
	if rt.phases == nil {
		return nil
	}
	out := make([]PhaseStat, 0, len(rt.phases.order))
	for _, name := range rt.phases.order {
		out = append(out, *rt.phases.stats[name])
	}
	return out
}
