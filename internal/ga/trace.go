package ga

import (
	"fourindex/internal/metrics"
	"fourindex/internal/trace"
)

// This file is the runtime side of the execution-trace subsystem
// (internal/trace): sequential-code entry points that schedules use to
// open schedule-level spans and drop marks, plus the counter snapshot
// that feeds per-span resource deltas. Per-operation events (Get, Put,
// Acc, Barrier, Create, Destroy) are emitted at their call sites in
// array.go, tiled.go and ga.go.

// Tracing reports whether an enabled tracer is attached to the runtime.
// Schedules use it to guard trace-only work (such as formatting mark
// labels) so the disabled path stays allocation-free.
func (rt *Runtime) Tracing() bool { return rt.cfg.Tracer.Enabled() }

// traceTotals snapshots the aggregate counters in the trace package's
// units. Sequential-code only (it reads all process counters).
func (rt *Runtime) traceTotals() trace.Totals {
	var t trace.Totals
	for _, c := range rt.counters {
		t.Flops += c.Flops()
		t.CommElements += c.Traffic(metrics.LevelGlobal)
		t.IntraElements += c.Traffic(metrics.LevelIntra)
		t.DiskElements += c.Traffic(metrics.LevelDisk)
		t.Messages += c.Messages(metrics.LevelGlobal) +
			c.Messages(metrics.LevelIntra) +
			c.Messages(metrics.LevelDisk)
	}
	for i := range rt.commExposed {
		t.CommExposedSec += rt.commExposed[i]
		t.CommOverlapSec += rt.commOverlapped[i]
	}
	return t
}

// TraceSpan opens a named span on the attached tracer (no-op when
// disabled). Must be called from sequential (between-region) code, like
// BeginPhase; schedules use it for their root span while BeginPhase
// emits the nested per-phase spans automatically.
func (rt *Runtime) TraceSpan(name string) {
	if !rt.Tracing() {
		return
	}
	rt.cfg.Tracer.BeginSpan(rt.runID, name, rt.Elapsed(), rt.traceTotals())
}

// TraceSpanEnd closes the innermost span opened by TraceSpan or
// BeginPhase. Sequential-code only.
func (rt *Runtime) TraceSpanEnd() {
	if !rt.Tracing() {
		return
	}
	rt.cfg.Tracer.EndSpan(rt.Elapsed(), rt.traceTotals())
}

// TraceMark drops an instant annotation (slab boundary, tile advance) at
// the current simulated time. Sequential-code only.
func (rt *Runtime) TraceMark(label string) {
	rt.cfg.Tracer.Mark(rt.runID, rt.Elapsed(), label)
}

// TraceRestart records a checkpoint resume (a schedule skipping already
// completed l-slabs or stages after a crash-restart) as a KindRestart
// event at the current simulated time. Sequential-code only.
func (rt *Runtime) TraceRestart(label string) {
	rt.cfg.Tracer.Emit(rt.runID, trace.KindRestart, trace.SeqProc, rt.Elapsed(), 0, label, 0, false)
}

// traceEmit forwards one per-operation event to the attached tracer
// under this runtime's run id. Nil-safe and allocation-free when
// tracing is disabled; safe from inside Parallel regions.
func (rt *Runtime) traceEmit(kind trace.Kind, proc int, start, dur float64, name string, elems int64, remote bool) {
	rt.cfg.Tracer.Emit(rt.runID, kind, proc, start, dur, name, elems, remote)
}
