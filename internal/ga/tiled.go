package ga

import (
	"fmt"
	"sync"
	"sync/atomic"

	"fourindex/internal/sym"
	"fourindex/internal/tile"
	"fourindex/internal/trace"
)

// TiledArray is an N-dimensional distributed tensor stored as whole
// data-tiles, the NWChem representation (Section 2.1): every dimension is
// blocked by a grid, tiles are linearised and distributed, and processes
// Get/Put/Acc entire tiles addressed by tile coordinates (Listing 4).
//
// Permutation symmetry is exploited at tile granularity: a symmetric
// index pair (d, d+1) stores only canonical tile blocks with
// t[d] >= t[d+1]; diagonal blocks (t[d] == t[d+1]) hold the full square
// with mirrored values, so within-tile data stays dense and GEMM-able.
// This is the classic block-triangular layout; it stores a factor
// ~(1 + 1/numTiles) more than the exact element-packed count in Table 1.
type TiledArray struct {
	rt    *Runtime
	Name  string
	Grids []tile.Grid
	// SymPairs lists index-dimension pairs (d, d+1) that are
	// permutation symmetric at block granularity.
	SymPairs [][2]int
	Dist     tile.Dist

	strides []int // canonical tile-id strides per dimension
	bytes   int64

	// stored flags which canonical tiles actually exist; nil means all
	// do. Tiles dropped by a sparsity filter (spatial symmetry in the
	// output tensor, Section 2.1) occupy no memory, read as zeros, and
	// move no data.
	stored []bool

	// onDisk marks a tensor that did not fit in aggregate memory and
	// was spilled to the file system (Config.AllowSpill). All of its
	// traffic is charged at disk bandwidth.
	onDisk bool

	data      []([]float64) // canonical tile id -> storage (Execute only)
	locks     []sync.RWMutex
	written   []atomic.Bool // Strict mode
	destroyed atomic.Bool

	// frozen marks the tensor immutable-after-sync: Freeze is called
	// from sequential code after the last producing Parallel region, so
	// the region boundary's happens-before edge publishes every tile to
	// every subsequent reader and GetT can skip the tile lock entirely.
	frozen atomic.Bool
}

// CreateTiled allocates a distributed tensor with one grid per dimension
// and the given symmetric dimension pairs. Each pair must be (d, d+1)
// with identical grids. Global-memory capacity is enforced; failures wrap
// ErrGlobalOOM.
func (rt *Runtime) CreateTiled(name string, grids []tile.Grid, symPairs [][2]int, pol tile.Policy) (*TiledArray, error) {
	return rt.CreateTiledSparse(name, grids, symPairs, pol, nil)
}

// CreateTiledSparse is CreateTiled with a tile sparsity filter: canonical
// tiles for which storedFn returns false are not stored at all — they
// consume no memory, all transfers to and from them are free no-ops, and
// reads return zeros. This models the structured block sparsity that
// spatial symmetry induces in the output tensor (Section 2.1). A nil
// storedFn keeps every tile.
func (rt *Runtime) CreateTiledSparse(name string, grids []tile.Grid, symPairs [][2]int, pol tile.Policy, storedFn func(coords []int) bool) (*TiledArray, error) {
	if len(grids) == 0 {
		return nil, fmt.Errorf("ga: tensor %q needs at least one dimension", name)
	}
	for _, p := range symPairs {
		if p[1] != p[0]+1 || p[0] < 0 || p[1] >= len(grids) {
			return nil, fmt.Errorf("ga: tensor %q has invalid symmetric pair %v", name, p)
		}
		if grids[p[0]] != grids[p[1]] {
			return nil, fmt.Errorf("ga: tensor %q symmetric pair %v has mismatched grids", name, p)
		}
	}
	a := &TiledArray{rt: rt, Name: name, Grids: grids, SymPairs: symPairs}

	// Canonical tile-id space: symmetric pairs collapse to a packed
	// pair index, other dims contribute their tile count.
	dims := a.canonicalDims()
	a.strides = make([]int, len(dims))
	total := 1
	for i := len(dims) - 1; i >= 0; i-- {
		a.strides[i] = total
		total *= dims[i]
	}

	// Total bytes: sum of stored canonical tile sizes.
	var words int64
	if storedFn != nil {
		a.stored = make([]bool, total)
	}
	a.forEachCanonical(func(coords []int) {
		if storedFn != nil {
			if !storedFn(coords) {
				return
			}
			a.stored[a.canonicalID(coords)] = true
		}
		words += int64(a.TileWords(coords))
	})
	a.bytes = words * 8

	lim := rt.effectiveGlobalMem()
	rt.mu.Lock()
	if lim > 0 && rt.globalBytes+a.bytes > lim {
		if !rt.cfg.AllowSpill {
			need := rt.globalBytes + a.bytes
			rt.mu.Unlock()
			return nil, fmt.Errorf("%w: tensor %q needs %d B live (capacity %d B)",
				ErrGlobalOOM, name, need, lim)
		}
		// Out-of-core fallback: the tensor lives on disk and charges
		// no aggregate memory.
		a.onDisk = true
	}
	if !a.onDisk {
		rt.globalBytes += a.bytes
		if rt.globalBytes > rt.peakGlobal {
			rt.peakGlobal = rt.globalBytes
		}
	}
	rt.liveArrays++
	rt.mu.Unlock()

	a.Dist = tile.NewDist(total, rt.cfg.Procs, pol, 1)
	if rt.cfg.Mode == Execute {
		a.data = make([][]float64, total)
		a.locks = make([]sync.RWMutex, total)
	}
	if rt.cfg.Strict {
		a.written = make([]atomic.Bool, total)
	}
	rt.traceEmit(trace.KindCreate, trace.SeqProc, rt.Elapsed(), 0, name, words, false)
	return a, nil
}

// canonicalDims returns the extent of each canonical tile coordinate:
// for the first dim of a symmetric pair, the packed pair-count; the
// second dim of a pair contributes 1 (absorbed); others their tile count.
func (a *TiledArray) canonicalDims() []int {
	dims := make([]int, len(a.Grids))
	for d, g := range a.Grids {
		dims[d] = g.NumTiles()
	}
	for _, p := range a.SymPairs {
		dims[p[0]] = sym.Pairs(a.Grids[p[0]].NumTiles())
		dims[p[1]] = 1
	}
	return dims
}

// forEachCanonical visits every canonical tile coordinate tuple.
func (a *TiledArray) forEachCanonical(f func(coords []int)) {
	nd := len(a.Grids)
	coords := make([]int, nd)
	var rec func(d int)
	rec = func(d int) {
		if d == nd {
			f(coords)
			return
		}
		if sp := a.symPairAt(d); sp >= 0 {
			for ti := 0; ti < a.Grids[d].NumTiles(); ti++ {
				for tj := 0; tj <= ti; tj++ {
					coords[d], coords[d+1] = ti, tj
					rec(d + 2)
				}
			}
			return
		}
		for t := 0; t < a.Grids[d].NumTiles(); t++ {
			coords[d] = t
			rec(d + 1)
		}
	}
	rec(0)
}

// symPairAt returns the pair index if dimension d starts a symmetric
// pair, else -1.
func (a *TiledArray) symPairAt(d int) int {
	for i, p := range a.SymPairs {
		if p[0] == d {
			return i
		}
	}
	return -1
}

// canonicalID maps canonical tile coordinates to the linear tile id.
// Coordinates of symmetric pairs must already satisfy t[d] >= t[d+1].
func (a *TiledArray) canonicalID(coords []int) int {
	if len(coords) != len(a.Grids) {
		panic(fmt.Sprintf("ga: tensor %q expects %d tile coords, got %d", a.Name, len(a.Grids), len(coords)))
	}
	id := 0
	for d := 0; d < len(coords); d++ {
		t := coords[d]
		if t < 0 || t >= a.Grids[d].NumTiles() {
			panic(fmt.Sprintf("ga: tensor %q tile coord %d out of range [0,%d) in dim %d",
				a.Name, t, a.Grids[d].NumTiles(), d))
		}
		if a.symPairAt(d) >= 0 {
			tj := coords[d+1]
			if tj > t {
				panic(fmt.Sprintf("ga: tensor %q non-canonical symmetric tile (%d,%d) in dims (%d,%d)",
					a.Name, t, tj, d, d+1))
			}
			id += sym.PairIndex(t, tj) * a.strides[d]
			d++ // skip absorbed dim
			continue
		}
		id += t * a.strides[d]
	}
	return id
}

// TileWords returns the element count of the tile at the given canonical
// coordinates (product of per-dimension tile widths).
func (a *TiledArray) TileWords(coords []int) int {
	w := 1
	for d, t := range coords {
		w *= a.Grids[d].Width(t)
	}
	return w
}

// TileShape returns the per-dimension widths of a tile.
func (a *TiledArray) TileShape(coords []int) []int {
	shape := make([]int, len(coords))
	for d, t := range coords {
		shape[d] = a.Grids[d].Width(t)
	}
	return shape
}

// Owner returns the process owning the tile at canonical coordinates.
func (a *TiledArray) Owner(coords ...int) int {
	return a.Dist.Owner(a.canonicalID(coords))
}

// Stored reports whether the tile at canonical coordinates physically
// exists (true for every tile of a dense tensor).
func (a *TiledArray) Stored(coords ...int) bool {
	if a.stored == nil {
		return true
	}
	return a.stored[a.canonicalID(coords)]
}

// Bytes returns the tensor's total global-memory footprint.
func (a *TiledArray) Bytes() int64 { return a.bytes }

// NumTiles returns the canonical tile count.
func (a *TiledArray) NumTiles() int { return a.Dist.NumTiles }

// OnDisk reports whether the tensor spilled to the file system.
func (a *TiledArray) OnDisk() bool { return a.onDisk }

// DestroyTiled releases the tensor's global memory.
func (rt *Runtime) DestroyTiled(a *TiledArray) {
	if a.destroyed.Swap(true) {
		panic(fmt.Sprintf("ga: tensor %q destroyed twice", a.Name))
	}
	rt.mu.Lock()
	if !a.onDisk {
		rt.globalBytes -= a.bytes
	}
	rt.liveArrays--
	rt.mu.Unlock()
	a.data = nil
	rt.traceEmit(trace.KindDestroy, trace.SeqProc, rt.Elapsed(), 0, a.Name, a.bytes/8, false)
}

func (a *TiledArray) checkAlive(op string) {
	if a.destroyed.Load() {
		panic(fmt.Sprintf("ga: %s on destroyed tensor %q", op, a.Name))
	}
}

// ForEachTile visits every canonical tile coordinate tuple in a fixed
// deterministic order. The coords slice is reused between calls; copy it
// if retained.
func (a *TiledArray) ForEachTile(f func(coords []int)) { a.forEachCanonical(f) }

// Freeze marks the tensor read-only. It must be called from sequential
// (between-region) code after the last Parallel region that writes the
// tensor: the region boundary already synchronised every producer with
// every later reader, so once frozen GetT copies tile data without
// taking the tile lock at all — concurrent reads of one hot tile (the
// A slabs and O-intermediates every process re-fetches per l-slab) stop
// contending on anything. PutT and AccT on a frozen tensor panic.
// Freezing is idempotent and permanent for the tensor's lifetime;
// RestoreTiles on a frozen tensor panics like a write.
func (a *TiledArray) Freeze() {
	a.checkAlive("Freeze")
	a.frozen.Store(true)
}

// Frozen reports whether Freeze has been called.
func (a *TiledArray) Frozen() bool { return a.frozen.Load() }

// ReadTileInto copies a tile's contents into buf without any accounting.
// Sequential (between-region) helper for result extraction and
// verification; Execute mode only. Unwritten tiles read as zeros.
func (a *TiledArray) ReadTileInto(buf []float64, coords ...int) {
	if a.rt.cfg.Mode != Execute {
		panic("ga: ReadTileInto requires Execute mode")
	}
	a.checkAlive("ReadTileInto")
	id := a.canonicalID(coords)
	words := a.TileWords(coords)
	if len(buf) < words {
		panic(fmt.Sprintf("ga: ReadTileInto buffer %d < tile words %d", len(buf), words))
	}
	if a.data[id] == nil {
		for i := 0; i < words; i++ {
			buf[i] = 0
		}
		return
	}
	copy(buf[:words], a.data[id])
}

// SnapshotTiles serialises the stored canonical tiles into one dense
// slice in ForEachTile order (never-written tiles read as zeros).
// Sequential (between-region) checkpoint helper, free of accounting —
// the caller charges the simulated cost through Runtime.ChargeCheckpoint.
// Returns nil in Cost mode, where a checkpoint records progress only.
func (a *TiledArray) SnapshotTiles() []float64 {
	if a.rt.cfg.Mode != Execute {
		return nil
	}
	a.checkAlive("SnapshotTiles")
	out := make([]float64, 0, a.bytes/8)
	a.forEachCanonical(func(coords []int) {
		id := a.canonicalID(coords)
		if a.stored != nil && !a.stored[id] {
			return
		}
		words := a.TileWords(coords)
		if a.data[id] == nil {
			out = append(out, make([]float64, words)...)
			return
		}
		out = append(out, a.data[id]...)
	})
	return out
}

// RestoreTiles writes a SnapshotTiles result back into the tensor and
// marks every stored tile written (so Strict-mode reads of restored
// state succeed after a restart). A nil data slice — a Cost-mode
// checkpoint — only marks the tiles. Sequential helper, free of
// accounting like SnapshotTiles.
func (a *TiledArray) RestoreTiles(data []float64) {
	a.checkAlive("RestoreTiles")
	if a.frozen.Load() {
		panic(fmt.Sprintf("ga: RestoreTiles on frozen tensor %q", a.Name))
	}
	off := 0
	a.forEachCanonical(func(coords []int) {
		id := a.canonicalID(coords)
		if a.stored != nil && !a.stored[id] {
			return
		}
		if a.written != nil {
			a.written[id].Store(true)
		}
		if a.rt.cfg.Mode != Execute || data == nil {
			return
		}
		words := a.TileWords(coords)
		if off+words > len(data) {
			panic(fmt.Sprintf("ga: RestoreTiles snapshot too small for %q: %d < %d", a.Name, len(data), off+words))
		}
		if a.data[id] == nil {
			a.data[id] = make([]float64, words)
		}
		copy(a.data[id], data[off:off+words])
		off += words
	})
}

// GetT fetches the whole tile at coords into buf (row-major over the
// tensor dims). In Cost mode buf may be nil. Returns the tile's element
// count.
func (p *Proc) GetT(a *TiledArray, buf []float64, coords ...int) int {
	a.checkAlive("GetT")
	id := a.canonicalID(coords)
	words := a.TileWords(coords)
	if a.stored != nil && !a.stored[id] {
		// Symmetry-forbidden block: reads are free zeros. The buffer
		// must still hold the whole tile — a short buffer here would
		// silently leave stale elements past len(buf) that the stored
		// path would have caught, so both paths panic alike.
		if a.rt.cfg.Mode == Execute {
			if len(buf) < words {
				panic(fmt.Sprintf("ga: GetT buffer %d < tile words %d", len(buf), words))
			}
			for i := 0; i < words; i++ {
				buf[i] = 0
			}
		}
		return words
	}
	if a.written != nil && !a.written[id].Load() {
		panic(fmt.Sprintf("ga: strict: GetT of never-written tile %v of %q", coords, a.Name))
	}
	p.faultPoint("Get", a.Name)
	start := p.Clock()
	remote := false
	if a.onDisk {
		p.chargeDisk(int64(words), true)
	} else {
		remote = a.Dist.Owner(id) != p.id
		p.chargeTransfer(remote, int64(words), true)
	}
	p.rt.traceEmit(trace.KindGet, p.id, start, p.Clock()-start, a.Name, int64(words), remote)
	if a.rt.cfg.Mode == Execute {
		if len(buf) < words {
			panic(fmt.Sprintf("ga: GetT buffer %d < tile words %d", len(buf), words))
		}
		if a.frozen.Load() {
			// Immutable-after-sync fast path: no writer can exist, so
			// the copy needs no lock (see Freeze).
			a.copyTile(buf, id, words)
		} else {
			a.locks[id].RLock()
			a.copyTile(buf, id, words)
			a.locks[id].RUnlock()
		}
	}
	return words
}

// copyTile copies tile id into buf (never-written tiles read as zeros).
func (a *TiledArray) copyTile(buf []float64, id, words int) {
	if a.data[id] == nil {
		for i := 0; i < words; i++ {
			buf[i] = 0
		}
		return
	}
	copy(buf[:words], a.data[id])
}

// PutT overwrites the whole tile at coords with buf.
func (p *Proc) PutT(a *TiledArray, buf []float64, coords ...int) {
	p.updateT("PutT", a, 0, false, buf, coords)
}

// AccT atomically accumulates alpha*buf into the tile at coords.
func (p *Proc) AccT(a *TiledArray, alpha float64, buf []float64, coords ...int) {
	p.updateT("AccT", a, alpha, true, buf, coords)
}

func (p *Proc) updateT(op string, a *TiledArray, alpha float64, acc bool, buf []float64, coords []int) {
	a.checkAlive(op)
	if a.frozen.Load() {
		panic(fmt.Sprintf("ga: %s on frozen tensor %q", op, a.Name))
	}
	id := a.canonicalID(coords)
	words := a.TileWords(coords)
	if a.stored != nil && !a.stored[id] {
		return // symmetry-forbidden block: writes are no-ops
	}
	if acc {
		p.faultPoint("Acc", a.Name)
	} else {
		p.faultPoint("Put", a.Name)
	}
	start := p.Clock()
	remote := false
	if a.onDisk {
		p.chargeDisk(int64(words), false)
	} else {
		remote = a.Dist.Owner(id) != p.id
		p.chargeTransfer(remote, int64(words), false)
	}
	kind := trace.KindPut
	if acc {
		kind = trace.KindAcc
	}
	p.rt.traceEmit(kind, p.id, start, p.Clock()-start, a.Name, int64(words), remote)
	if a.written != nil {
		a.written[id].Store(true)
	}
	if a.rt.cfg.Mode != Execute {
		return
	}
	if len(buf) < words {
		panic(fmt.Sprintf("ga: %s buffer %d < tile words %d", op, len(buf), words))
	}
	a.locks[id].Lock()
	if a.data[id] == nil {
		a.data[id] = make([]float64, words)
	}
	dst := a.data[id]
	if acc {
		for i := 0; i < words; i++ {
			dst[i] += alpha * buf[i]
		}
	} else {
		copy(dst, buf[:words])
	}
	a.locks[id].Unlock()
}
