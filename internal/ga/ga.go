// Package ga implements a Global-Arrays-style partitioned global address
// space (PGAS) runtime, the substrate the paper's schedules are written
// against (Section 2.1, Listing 4).
//
// Tensors are blocked into data-tiles, linearised, and distributed over
// processes. Any process can Get, Put, or atomically accumulate (Acc) an
// arbitrary rectangular patch of a distributed array; transfers are
// decomposed tile-by-tile and accounted as remote (inter-node
// communication, the paper's global<->local I/O) or intra-node copies
// depending on tile ownership.
//
// The runtime runs P processes as goroutines inside Parallel regions.
// GA_Sync corresponds to the end of a Parallel region (or an explicit
// Barrier). A region body panicking is converted to an error and the
// barrier is poisoned so sibling processes cannot deadlock.
//
// Two execution modes share all control flow:
//
//   - Execute: tiles hold real float64 data; Get/Put/Acc copy elements.
//     Used for correctness runs at small extents.
//   - Cost: no element storage; all operations only account bytes,
//     messages, memory, and simulated time. Used to replay the paper's
//     molecule-scale experiments (terabytes of state) on one machine.
//
// Memory is enforced: creating a distributed array charges the global
// (aggregate cluster) capacity, and local buffers charge per-process
// capacity. Exceeding either yields ErrGlobalOOM / ErrLocalOOM, which is
// how the evaluation reproduces the paper's "Failed" configurations.
package ga

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"fourindex/internal/cluster"
	"fourindex/internal/faults"
	"fourindex/internal/metrics"
	"fourindex/internal/trace"
)

// Mode selects between real execution and cost-only simulation.
type Mode int

const (
	// Execute stores and moves real data.
	Execute Mode = iota
	// Cost runs the same schedules but only accounts costs.
	Cost
)

// String names the mode.
func (m Mode) String() string {
	if m == Cost {
		return "cost"
	}
	return "execute"
}

// ErrGlobalOOM reports that a distributed-array allocation exceeded the
// aggregate physical memory of the simulated cluster.
var ErrGlobalOOM = errors.New("ga: aggregate global memory exhausted")

// ErrLocalOOM reports that a process-local buffer allocation exceeded the
// per-process memory capacity.
var ErrLocalOOM = errors.New("ga: process-local memory exhausted")

// Config parametrises a runtime.
type Config struct {
	Procs int
	Mode  Mode
	// Run supplies the machine cost model; nil disables simulated time.
	Run *cluster.Run
	// GlobalMemBytes caps the sum of live distributed arrays
	// (aggregate cluster memory). 0 means unlimited.
	GlobalMemBytes int64
	// LocalMemBytes caps per-process local buffer allocations.
	// 0 means unlimited.
	LocalMemBytes int64
	// Strict panics when a Get touches a tile that was never written,
	// catching missing-synchronisation bugs in schedules.
	Strict bool
	// AllowSpill turns aggregate-memory exhaustion into out-of-core
	// execution instead of ErrGlobalOOM: a tensor that does not fit
	// becomes disk-resident and all of its traffic is charged at the
	// (collective, shared) file-system bandwidth. This models the
	// disk-spilling alternative the paper's zero-spill schedules
	// eliminate (Section 3).
	AllowSpill bool
	// Tracer, when non-nil, receives per-operation events and phase
	// spans (see internal/trace). Nil disables tracing at zero cost.
	Tracer *trace.Tracer
	// Overlap enables the nonblocking verbs (NbGetT/NbPutT/NbAccT) to
	// actually overlap communication with computation. When false (the
	// default) the nonblocking verbs degrade to their blocking
	// equivalents at issue time — identical clocks, events, and fault
	// points — so schedules can be written against the nonblocking API
	// unconditionally.
	Overlap bool
	// OverlapEfficiency is the fraction of an in-flight transfer's time
	// that computation can hide, in (0, 1]. At Wait the process is
	// charged max(arrival - now, (1-e) * duration): e = 1 (the default
	// when this is zero) hides everything that finished in flight,
	// while values near 0 approach the blocking sum rule.
	OverlapEfficiency float64
	// Faults, when non-nil, is the deterministic fault plan consulted
	// on every Get/Put/Acc (see internal/faults): transient faults are
	// retried with exponential backoff charged on the simulated clock,
	// crash points and retry exhaustion panic with typed errors that
	// poison the barrier, stragglers stretch one process's time
	// charges, and late OOM pressure shrinks the effective aggregate
	// capacity. Nil injects nothing.
	Faults *faults.Plan
}

// Runtime is a PGAS runtime instance.
type Runtime struct {
	cfg      Config
	counters []*metrics.Counters
	clocks   []float64
	barrier  *clockBarrier

	mu          sync.Mutex
	globalBytes int64
	peakGlobal  int64
	liveArrays  int

	// idle accumulates per-process wait time at synchronisation
	// points: the load-imbalance cost the paper's Section 7.3
	// discusses for triangular work distributions.
	idle []float64

	phases *phaseTracker // sequential-section phase accounting

	// runID identifies this runtime instance in the attached tracer (a
	// hybrid driver runs several runtimes against one tracer).
	runID int32

	// faultRun is this runtime's run number in the fault plan (plan-
	// owned, so one-shot crash points do not re-fire after a restart).
	faultRun int
	// opSeqs counts fault-consulted operations per process. Each slot
	// has a single writer (its process goroutine); sums are read only
	// from sequential code after a region boundary.
	opSeqs []int64
	// slow holds per-process straggler factors (1.0 = full speed).
	slow []float64

	// Nonblocking-transfer state (see nb.go). Every slice is indexed by
	// process id with a single writer (that process's goroutine), like
	// clocks. nbChanFree is the simulated time each process's comm
	// channel becomes free (in-flight transfers serialise per process);
	// nbAppliers holds the per-process Execute-mode apply workers that
	// land deferred copies in per-process FIFO order; nbOutstanding
	// counts handles not yet waited (checked at region exit);
	// commExposed/commOverlapped split each process's transfer seconds
	// into time it waited for versus time hidden behind compute.
	nbChanFree     []float64
	nbAppliers     []*nbApplier
	applierWG      sync.WaitGroup
	nbOutstanding  []int
	commExposed    []float64
	commOverlapped []float64

	// bufPools recycles Execute-mode local staging buffers, bucketed by
	// power-of-two capacity: the schedules allocate and free the same
	// tile-sized Get/Put/Acc buffers once per work unit, and without
	// reuse that garbage dominates execute-mode allocation volume. The
	// ledger accounting in AllocLocal/FreeLocal is unchanged — pooling
	// only recycles the physical storage. boxPool recycles the
	// *[]float64 headers cycled through bufPools so putPooled does not
	// allocate a fresh 3-word box per recycle.
	bufPools [poolBuckets]sync.Pool
	boxPool  sync.Pool
}

// poolBuckets bounds the buffer-pool size classes: bucket b holds
// slices of capacity 2^b elements, so 2^40 elements (8 TiB) is far
// beyond any execute-mode buffer.
const poolBuckets = 41

// NewRuntime validates the configuration and builds a runtime.
func NewRuntime(cfg Config) (*Runtime, error) {
	if cfg.Procs <= 0 {
		return nil, fmt.Errorf("ga: non-positive process count %d", cfg.Procs)
	}
	if e := cfg.OverlapEfficiency; e < 0 || e > 1 {
		return nil, fmt.Errorf("ga: overlap efficiency %v out of [0, 1]", e)
	}
	rt := &Runtime{
		cfg:            cfg,
		counters:       make([]*metrics.Counters, cfg.Procs),
		clocks:         make([]float64, cfg.Procs),
		idle:           make([]float64, cfg.Procs),
		opSeqs:         make([]int64, cfg.Procs),
		slow:           make([]float64, cfg.Procs),
		nbChanFree:     make([]float64, cfg.Procs),
		nbOutstanding:  make([]int, cfg.Procs),
		commExposed:    make([]float64, cfg.Procs),
		commOverlapped: make([]float64, cfg.Procs),
		barrier:        newClockBarrier(cfg.Procs),
	}
	for i := range rt.counters {
		rt.counters[i] = &metrics.Counters{}
	}
	for i := range rt.slow {
		rt.slow[i] = cfg.Faults.SlowFactor(i)
	}
	rt.runID = cfg.Tracer.RegisterRun()
	rt.faultRun = cfg.Faults.RegisterRun()
	return rt, nil
}

// Procs returns the process count (GA_Nnodes).
func (rt *Runtime) Procs() int { return rt.cfg.Procs }

// Mode returns the execution mode.
func (rt *Runtime) Mode() Mode { return rt.cfg.Mode }

// GlobalBytes returns the bytes currently held by live distributed arrays.
func (rt *Runtime) GlobalBytes() int64 {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	return rt.globalBytes
}

// PeakGlobalBytes returns the high-water mark of distributed-array bytes,
// i.e. the aggregate-memory footprint of the executed schedule.
func (rt *Runtime) PeakGlobalBytes() int64 {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	return rt.peakGlobal
}

// LiveArrays returns the number of distributed arrays not yet destroyed.
func (rt *Runtime) LiveArrays() int {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	return rt.liveArrays
}

// Elapsed returns the simulated wall time: the maximum process clock.
// Zero when no cost model is configured.
func (rt *Runtime) Elapsed() float64 {
	var m float64
	for _, c := range rt.clocks {
		if c > m {
			m = c
		}
	}
	return m
}

// ProcCounters returns the metrics of process p.
func (rt *Runtime) ProcCounters(p int) *metrics.Counters { return rt.counters[p] }

// Totals aggregates the per-process counters.
func (rt *Runtime) Totals() metrics.Snapshot {
	var t metrics.Snapshot
	for _, c := range rt.counters {
		s := c.Snapshot()
		t.Flops += s.Flops
		t.DiskTraffic += s.DiskTraffic
		t.CommTraffic += s.CommTraffic
		t.DiskMessages += s.DiskMessages
		t.CommMessages += s.CommMessages
		t.Retries += s.Retries
		if s.PeakElements > t.PeakElements {
			t.PeakElements = s.PeakElements
		}
	}
	return t
}

// CommVolume returns total inter-node elements moved (both directions).
func (rt *Runtime) CommVolume() int64 {
	var v int64
	for _, c := range rt.counters {
		v += c.Traffic(metrics.LevelGlobal)
	}
	return v
}

// IntraVolume returns total same-node get/put elements moved.
func (rt *Runtime) IntraVolume() int64 {
	var v int64
	for _, c := range rt.counters {
		v += c.Traffic(metrics.LevelIntra)
	}
	return v
}

// DiskVolume returns total elements moved to or from disk-resident
// tensors (zero unless AllowSpill let a tensor overflow to disk).
func (rt *Runtime) DiskVolume() int64 {
	var v int64
	for _, c := range rt.counters {
		v += c.Traffic(metrics.LevelDisk)
	}
	return v
}

// regionPanic wraps a panic value recovered from a Parallel body.
type regionPanic struct {
	proc int
	val  any
}

// Parallel runs body concurrently on every process and waits for all of
// them (the boundary acts as GA_Sync). If any body panics, the panic is
// captured, sibling barriers are poisoned, and an error is returned.
// Clocks are synchronised to the maximum at exit.
func (rt *Runtime) Parallel(body func(p *Proc)) error {
	// Overlapped Execute regions run one long-lived apply worker per
	// process (see nb.go); workers are drained and joined before the
	// region returns on every path, including panic propagation.
	appliers := rt.cfg.Overlap && rt.cfg.Mode == Execute
	if appliers {
		rt.startAppliers()
	}
	var wg sync.WaitGroup
	panics := make(chan regionPanic, rt.cfg.Procs)
	for i := 0; i < rt.cfg.Procs; i++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			defer func() {
				if v := recover(); v != nil {
					if _, poisoned := v.(barrierBroken); !poisoned {
						panics <- regionPanic{proc: id, val: v}
					}
					rt.barrier.poison()
				}
			}()
			body(&Proc{rt: rt, id: id})
			// Region exit is a barrier: every nonblocking handle must
			// have been waited by now, or deferred work could cross the
			// synchronisation point (see nb.go).
			if n := rt.nbOutstanding[id]; n != 0 {
				panic(fmt.Sprintf("ga: process %d left %d nonblocking handle(s) unwaited at region exit", id, n))
			}
		}(i)
	}
	wg.Wait()
	close(panics)
	if appliers {
		rt.stopAppliers()
	}
	if rp, ok := <-panics; ok {
		rt.barrier.reset(rt.cfg.Procs)
		if err, isErr := rp.val.(error); isErr {
			return fmt.Errorf("ga: process %d failed: %w", rp.proc, err)
		}
		return fmt.Errorf("ga: process %d panicked: %v", rp.proc, rp.val)
	}
	// Region boundary is a synchronisation point: all clocks advance
	// to the maximum; the gaps are idle (load-imbalance) time.
	var m float64
	for _, c := range rt.clocks {
		if c > m {
			m = c
		}
	}
	for i := range rt.clocks {
		rt.idle[i] += m - rt.clocks[i]
		rt.clocks[i] = m
	}
	return nil
}

// IdleFraction returns the fraction of total process-time spent waiting
// at synchronisation points — 0 for perfect balance, approaching 1 when
// one process serialises the run. Zero when no cost model is configured.
func (rt *Runtime) IdleFraction() float64 {
	elapsed := rt.Elapsed()
	if elapsed <= 0 {
		return 0
	}
	var idle float64
	for _, v := range rt.idle {
		idle += v
	}
	return idle / (elapsed * float64(rt.cfg.Procs))
}

// CommExposedSeconds returns the total simulated transfer time processes
// actually waited for (blocking transfers plus the exposed remainder of
// nonblocking ones). Sequential-code only, like Totals.
func (rt *Runtime) CommExposedSeconds() float64 {
	var s float64
	for _, v := range rt.commExposed {
		s += v
	}
	return s
}

// CommOverlapSeconds returns the total simulated transfer time hidden
// behind computation by nonblocking operations. Sequential-code only.
func (rt *Runtime) CommOverlapSeconds() float64 {
	var s float64
	for _, v := range rt.commOverlapped {
		s += v
	}
	return s
}

// Proc is the per-process handle passed to Parallel bodies.
type Proc struct {
	rt *Runtime
	id int
}

// ID returns the process rank (GA_Nodeid).
func (p *Proc) ID() int { return p.id }

// Procs returns the total process count.
func (p *Proc) Procs() int { return p.rt.cfg.Procs }

// Counters returns this process's metrics.
func (p *Proc) Counters() *metrics.Counters { return p.rt.counters[p.id] }

// Clock returns this process's simulated time in seconds.
func (p *Proc) Clock() float64 { return p.rt.clocks[p.id] }

// Compute accounts flops floating-point operations and advances the
// simulated clock by the machine model's compute time.
func (p *Proc) Compute(flops int64) {
	p.ComputeEff(flops, 1)
}

// ComputeEff accounts flops with a kernel-efficiency factor in (0, 1]:
// the full operation count is recorded, but simulated time is
// flops / (rate * eff). Used to model implementations whose kernel
// shapes (e.g. the per-row DGEMM calls of the paper's Listing 4) sustain
// only a fraction of tuned-GEMM throughput.
func (p *Proc) ComputeEff(flops int64, eff float64) {
	if eff <= 0 || eff > 1 {
		panic(fmt.Sprintf("ga: kernel efficiency %v out of (0, 1]", eff))
	}
	p.Counters().AddFlops(flops)
	if r := p.rt.cfg.Run; r != nil {
		p.rt.clocks[p.id] += r.ComputeSeconds(flops) / eff * p.rt.slow[p.id]
	}
}

// Barrier synchronises all processes inside a Parallel region (GA_Sync)
// and aligns their clocks to the maximum.
func (p *Proc) Barrier() {
	before := p.rt.clocks[p.id]
	after := p.rt.barrier.await(before)
	p.rt.idle[p.id] += after - before
	p.rt.clocks[p.id] = after
	p.rt.traceEmit(trace.KindBarrier, p.id, before, after-before, "barrier", 0, false)
}

// Buffer is a process-local allocation. Data is nil in Cost mode.
type Buffer struct {
	Data  []float64
	words int64
	// state tracks the allocation's owner and lifetime so an invalid
	// FreeLocal fails loudly instead of corrupting the ledger. Shared
	// by all copies of the Buffer value; nil for a Buffer that did not
	// come from AllocLocal.
	state *bufState
}

// bufState is the shared lifetime record behind every Buffer copy.
type bufState struct {
	owner int
	freed bool
}

// BufferFreeError reports a FreeLocal that would have corrupted the
// local-memory ledger: freeing a buffer twice, freeing a buffer that
// never came from AllocLocal, or freeing another process's buffer.
type BufferFreeError struct {
	// Words is the buffer's element capacity.
	Words int64
	// Owner is the allocating process, or -1 when unknown (a foreign
	// buffer that never came from AllocLocal).
	Owner int
	// Proc is the process that attempted the free.
	Proc int
	// Reason says which rule the free violated.
	Reason string
}

// Error formats the violation with the buffer's identity.
func (e *BufferFreeError) Error() string {
	return fmt.Sprintf("ga: FreeLocal on process %d: %s (buffer of %d words, owner %d)",
		e.Proc, e.Reason, e.Words, e.Owner)
}

// Words returns the element capacity of the buffer.
func (b Buffer) Words() int64 { return b.words }

// AllocLocal reserves words elements of process-local memory, enforcing
// the per-process capacity. In Execute mode the returned buffer carries
// real zeroed storage.
func (p *Proc) AllocLocal(words int64) (Buffer, error) {
	if words < 0 {
		return Buffer{}, fmt.Errorf("ga: negative local allocation %d", words)
	}
	c := p.Counters()
	if lim := p.rt.cfg.LocalMemBytes; lim > 0 && (c.Current()+words)*8 > lim {
		return Buffer{}, fmt.Errorf("%w: process %d needs %d B, capacity %d B (already using %d B)",
			ErrLocalOOM, p.id, words*8, lim, c.Current()*8)
	}
	c.Alloc(words)
	b := Buffer{words: words, state: &bufState{owner: p.id}}
	if p.rt.cfg.Mode == Execute && words > 0 {
		b.Data = p.rt.getPooled(words)
	}
	return b, nil
}

// getPooled returns a zeroed slice of length words from the bucketed
// buffer pool, allocating a bucket-capacity slice on a miss. Buffers
// are re-zeroed on reuse because AllocLocal promises zeroed storage
// (the fused schedules accumulate GEMMs into fresh buffers).
func (rt *Runtime) getPooled(words int64) []float64 {
	bkt := poolBucket(words)
	if bkt < 0 {
		return make([]float64, words)
	}
	if v := rt.bufPools[bkt].Get(); v != nil {
		box := v.(*[]float64)
		s := (*box)[:words]
		*box = nil
		rt.boxPool.Put(box)
		clear(s)
		return s
	}
	return make([]float64, words, int64(1)<<bkt)
}

// putPooled recycles a buffer's storage. Only slices whose capacity is
// exactly a bucket size re-enter the pool, so a future Get can always
// reslice to any length the bucket covers.
func (rt *Runtime) putPooled(s []float64) {
	bkt := poolBucket(int64(cap(s)))
	if bkt < 0 || cap(s) != 1<<bkt {
		return
	}
	var box *[]float64
	if v := rt.boxPool.Get(); v != nil {
		box = v.(*[]float64)
	} else {
		box = new([]float64)
	}
	*box = s[:cap(s)]
	rt.bufPools[bkt].Put(box)
}

// poolBucket returns the smallest power-of-two bucket holding words
// elements, or -1 when words is outside the pooled range.
func poolBucket(words int64) int {
	for b := 0; b < poolBuckets; b++ {
		if int64(1)<<b >= words {
			return b
		}
	}
	return -1
}

// MustAllocLocal is AllocLocal that panics on failure (the panic is
// converted to an error by Parallel).
func (p *Proc) MustAllocLocal(words int64) Buffer {
	b, err := p.AllocLocal(words)
	if err != nil {
		panic(err)
	}
	return b
}

// FreeLocal releases a local buffer. The caller must not retain b.Data
// afterwards: in Execute mode the storage re-enters the buffer pool and
// a later AllocLocal may hand it to another process. Freeing a buffer
// twice, a buffer that never came from AllocLocal, or another process's
// buffer panics with *BufferFreeError (converted to an error by
// Parallel) instead of silently corrupting the ledger.
func (p *Proc) FreeLocal(b Buffer) {
	if b.state == nil {
		panic(&BufferFreeError{Words: b.words, Owner: -1, Proc: p.id,
			Reason: "foreign buffer (not from AllocLocal)"})
	}
	if b.state.owner != p.id {
		panic(&BufferFreeError{Words: b.words, Owner: b.state.owner, Proc: p.id,
			Reason: "cross-process free"})
	}
	if b.state.freed {
		panic(&BufferFreeError{Words: b.words, Owner: b.state.owner, Proc: p.id,
			Reason: "double free"})
	}
	b.state.freed = true
	p.Counters().Free(b.words)
	if b.Data != nil {
		p.rt.putPooled(b.Data)
	}
}

// chargeTransfer accounts one tile-fragment transfer of elems elements.
func (p *Proc) chargeTransfer(remote bool, elems int64, isLoad bool) {
	c := p.Counters()
	lvl := metrics.LevelIntra
	if remote {
		lvl = metrics.LevelGlobal
	}
	if isLoad {
		c.AddLoad(lvl, elems)
	} else {
		c.AddStore(lvl, elems)
	}
	if r := p.rt.cfg.Run; r != nil {
		var dt float64
		if remote {
			dt = r.RemoteSeconds(elems*8) * p.rt.slow[p.id]
		} else {
			dt = r.LocalSeconds(elems*8) * p.rt.slow[p.id]
		}
		p.rt.clocks[p.id] += dt
		// A blocking transfer is fully exposed: the process waits for
		// all of it (the denominator of the exposed-comm fraction).
		p.rt.commExposed[p.id] += dt
	}
}

// chargeDisk accounts one transfer against a disk-resident tensor.
func (p *Proc) chargeDisk(elems int64, isLoad bool) {
	c := p.Counters()
	if isLoad {
		c.AddLoad(metrics.LevelDisk, elems)
	} else {
		c.AddStore(metrics.LevelDisk, elems)
	}
	if r := p.rt.cfg.Run; r != nil {
		dt := r.DiskSeconds(elems*8) * p.rt.slow[p.id]
		p.rt.clocks[p.id] += dt
		p.rt.commExposed[p.id] += dt
	}
}

// barrierBroken is the panic value used to unwind processes waiting on a
// poisoned barrier.
type barrierBroken struct{}

// clockBarrier is a reusable rendezvous that also propagates the maximum
// simulated clock to all participants.
type clockBarrier struct {
	mu      sync.Mutex
	cond    *sync.Cond
	n       int
	arrived int
	gen     uint64
	max     float64
	results [2]float64
	broken  atomic.Bool
}

func newClockBarrier(n int) *clockBarrier {
	b := &clockBarrier{n: n}
	b.cond = sync.NewCond(&b.mu)
	return b
}

// await blocks until all n participants arrive, then returns the maximum
// clock among them. Panics with barrierBroken if the barrier is poisoned.
func (b *clockBarrier) await(clock float64) float64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.broken.Load() {
		panic(barrierBroken{})
	}
	if clock > b.max {
		b.max = clock
	}
	gen := b.gen
	b.arrived++
	if b.arrived == b.n {
		b.results[gen%2] = b.max
		b.max = 0
		b.arrived = 0
		b.gen++
		b.cond.Broadcast()
		return b.results[gen%2]
	}
	for gen == b.gen && !b.broken.Load() {
		b.cond.Wait()
	}
	if b.broken.Load() {
		panic(barrierBroken{})
	}
	return b.results[gen%2]
}

// poison releases all waiters with a panic and marks the barrier broken.
func (b *clockBarrier) poison() {
	b.mu.Lock()
	b.broken.Store(true)
	b.cond.Broadcast()
	b.mu.Unlock()
}

// reset re-arms a poisoned barrier for subsequent regions.
func (b *clockBarrier) reset(n int) {
	b.mu.Lock()
	b.n = n
	b.arrived = 0
	b.max = 0
	b.broken.Store(false)
	b.mu.Unlock()
}
