package ga

import (
	"fmt"

	"fourindex/internal/faults"
	"fourindex/internal/metrics"
	"fourindex/internal/trace"
)

// faultPoint consults the fault plan before one Get/Put/Acc of array
// name. Transient faults are absorbed locally: the operation is retried
// after an exponential backoff charged on this process's simulated
// clock, the retry counted in metrics and emitted as a KindRetry trace
// event — the barrier is never poisoned for a recoverable fault. Fatal
// faults (an injected crash, or a transient fault that exhausts the
// retry budget) panic with a typed error; Parallel converts the panic
// to an error and poisons the barrier, which is what distinguishes
// recoverable from fatal faults at the synchronisation layer.
func (p *Proc) faultPoint(op, name string) {
	plan := p.rt.cfg.Faults
	if plan == nil {
		return
	}
	seq := p.rt.opSeqs[p.id]
	p.rt.opSeqs[p.id]++
	for attempt := 0; ; attempt++ {
		switch plan.Decide(p.rt.faultRun, p.id, seq, attempt) {
		case faults.None:
			return
		case faults.Crash:
			err := &faults.CrashError{Run: p.rt.faultRun, Proc: p.id, Seq: seq}
			p.rt.traceEmit(trace.KindFault, p.id, p.Clock(), 0,
				fmt.Sprintf("crash: %s %s", op, name), 0, false)
			panic(err)
		case faults.Transient:
			if attempt+1 >= plan.MaxAttempts() {
				p.rt.traceEmit(trace.KindFault, p.id, p.Clock(), 0,
					fmt.Sprintf("exhausted: %s %s", op, name), 0, false)
				panic(&faults.RetryExhaustedError{
					Op: op, Array: name, Proc: p.id, Attempts: attempt + 1,
				})
			}
			start := p.Clock()
			if p.rt.cfg.Run != nil {
				p.rt.clocks[p.id] += plan.Backoff(attempt)
			}
			p.Counters().AddRetry()
			p.rt.traceEmit(trace.KindRetry, p.id, start, p.Clock()-start,
				fmt.Sprintf("%s %s", op, name), 0, false)
		}
	}
}

// Fatal aborts this process with err, poisoning the barrier so sibling
// processes unwind instead of deadlocking. It is the sanctioned way for
// a Parallel body to mark a ga operation error as deliberately
// unrecoverable (the retrydiscipline analyzer accepts it as explicit
// propagation). No-op when err is nil.
func (p *Proc) Fatal(err error) {
	if err == nil {
		return
	}
	panic(err)
}

// effectiveGlobalMem returns the aggregate-memory capacity currently in
// force: the configured GlobalMemBytes, tightened to the fault plan's
// late-OOM cap once the runtime has performed enough operations. Called
// from sequential allocation code only (opSeqs sums are race-free after
// a region boundary).
func (rt *Runtime) effectiveGlobalMem() int64 {
	lim := rt.cfg.GlobalMemBytes
	plan := rt.cfg.Faults
	if plan == nil || plan.OOM == nil {
		return lim
	}
	var ops int64
	for _, s := range rt.opSeqs {
		ops += s
	}
	if ops >= plan.OOM.AfterOps {
		if cap := plan.OOM.CapBytes; lim == 0 || cap < lim {
			return cap
		}
	}
	return lim
}

// ChargeCheckpoint accounts one checkpoint save (isLoad false) or
// restore (isLoad true) of words elements: disk-level traffic on
// process 0's counters plus simulated file-system time on every clock
// (checkpointing is a collective pause at a region boundary). Called
// from sequential schedule code only.
func (rt *Runtime) ChargeCheckpoint(words int64, isLoad bool) {
	if words <= 0 {
		return
	}
	if isLoad {
		rt.counters[0].AddLoad(metrics.LevelDisk, words)
	} else {
		rt.counters[0].AddStore(metrics.LevelDisk, words)
	}
	if r := rt.cfg.Run; r != nil {
		dt := r.DiskSeconds(words * 8)
		for i := range rt.clocks {
			rt.clocks[i] += dt
		}
	}
}
