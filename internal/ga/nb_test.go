package ga

import (
	"errors"
	"strings"
	"sync"
	"testing"

	"fourindex/internal/cluster"
	"fourindex/internal/tile"
)

// nbRuntime builds a runtime with the nonblocking path enabled.
func nbRuntime(t *testing.T, cfg Config) *Runtime {
	t.Helper()
	cfg.Overlap = true
	rt, err := NewRuntime(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return rt
}

// TestNbDegradesWhenOverlapOff pins the degrade contract: with
// Config.Overlap false the nonblocking verbs complete at issue and hand
// back a shared no-op handle, so a schedule written against the
// nonblocking API runs identically to the blocking runtime.
func TestNbDegradesWhenOverlapOff(t *testing.T) {
	rt, err := NewRuntime(Config{Procs: 1, Mode: Execute})
	if err != nil {
		t.Fatal(err)
	}
	g := tile.NewGrid(4, 4)
	a, err := rt.CreateTiled("a", []tile.Grid{g, g}, nil, tile.RoundRobin)
	if err != nil {
		t.Fatal(err)
	}
	defer rt.DestroyTiled(a)

	if err := rt.Parallel(func(p *Proc) {
		src := make([]float64, 16)
		for i := range src {
			src[i] = float64(i)
		}
		h := p.NbPutT(a, src, 0, 0)
		if !h.noop {
			t.Error("overlap-off NbPutT returned a live handle")
		}
		// Degraded writes have completed at issue: reusing (and even
		// rewriting) the source buffer must not disturb the tile.
		for i := range src {
			src[i] = -1
		}
		dst := make([]float64, 16)
		hg := p.NbGetT(a, dst, 0, 0)
		if !hg.noop {
			t.Error("overlap-off NbGetT returned a live handle")
		}
		for i, v := range dst {
			if v != float64(i) {
				t.Fatalf("dst[%d] = %v, want %v", i, v, float64(i))
			}
		}
		// No-op handles tolerate repeated waits from any process.
		p.WaitAll(h, hg, nil)
		h.Wait(p)
	}); err != nil {
		t.Fatal(err)
	}
}

// TestNbCostModelMaxRule pins the overlap clock rule: the wait charges
// only the exposed remainder of the in-flight time, so clock advance
// over an issue..wait window is max(compute, comm), not their sum.
func TestNbCostModelMaxRule(t *testing.T) {
	run, err := cluster.SystemA().Configure(1, 1)
	if err != nil {
		t.Fatal(err)
	}

	// One remote-free single-proc runtime per scenario so Elapsed reads
	// cleanly. The tile transfer has a fixed simulated duration dur.
	build := func(eff float64) (*Runtime, *TiledArray) {
		rt, err := NewRuntime(Config{Procs: 1, Mode: Cost, Run: &run, Overlap: true, OverlapEfficiency: eff})
		if err != nil {
			t.Fatal(err)
		}
		g := tile.NewGrid(64, 64)
		a, err := rt.CreateTiled("a", []tile.Grid{g, g}, nil, tile.RoundRobin)
		if err != nil {
			t.Fatal(err)
		}
		if err := rt.Parallel(func(p *Proc) { p.PutT(a, nil, 0, 0) }); err != nil {
			t.Fatal(err)
		}
		return rt, a
	}

	// Scenario 1: wait immediately after issue — the whole transfer is
	// exposed, nothing is hidden. The setup PutT was blocking and counts
	// as exposed too, so measure the get against that baseline.
	rt1, a1 := build(0)
	putExposed := rt1.CommExposedSeconds()
	if err := rt1.Parallel(func(p *Proc) {
		p.NbGetT(a1, nil, 0, 0).Wait(p)
	}); err != nil {
		t.Fatal(err)
	}
	dur := rt1.CommExposedSeconds() - putExposed
	if dur <= 0 {
		t.Fatalf("immediate wait exposed %v, want > 0", dur)
	}
	if ov := rt1.CommOverlapSeconds(); ov != 0 {
		t.Errorf("immediate wait hid %v s, want 0", ov)
	}

	// Scenario 2: enough compute between issue and wait to cover the
	// transfer — the wait charges ~nothing and the whole duration is
	// counted as overlapped. Elapsed is the compute time alone (max
	// rule), not compute + dur (sum rule).
	rt2, a2 := build(0)
	before := rt2.Elapsed()
	// Single-proc runtime, but guard the capture so the measurement
	// stays safe if the scenario ever runs wider.
	var mu sync.Mutex
	var computeSec float64
	if err := rt2.Parallel(func(p *Proc) {
		h := p.NbGetT(a2, nil, 0, 0)
		start := rt2.clocks[0]
		for rt2.clocks[0]-start < 10*dur {
			p.Compute(1 << 20)
		}
		mu.Lock()
		computeSec = rt2.clocks[0] - start
		mu.Unlock()
		h.Wait(p)
	}); err != nil {
		t.Fatal(err)
	}
	if exp := rt2.CommExposedSeconds() - putExposed; exp > 1e-12 {
		t.Errorf("fully-hidden transfer exposed %v s, want ~0", exp)
	}
	if ov := rt2.CommOverlapSeconds(); ov < 0.99*dur || ov > 1.01*dur {
		t.Errorf("overlapped %v s, want ~%v", ov, dur)
	}
	if got, want := rt2.Elapsed()-before, computeSec; got > want*1.000001+1e-12 {
		t.Errorf("elapsed %v, want max rule ~%v (sum rule would be %v)", got, want, want+dur)
	}

	// Scenario 3: OverlapEfficiency 0.25 floors the exposed charge at
	// 75% of the duration no matter how much compute intervenes.
	rt3, a3 := build(0.25)
	if err := rt3.Parallel(func(p *Proc) {
		h := p.NbGetT(a3, nil, 0, 0)
		start := rt3.clocks[0]
		for rt3.clocks[0]-start < 10*dur {
			p.Compute(1 << 20)
		}
		h.Wait(p)
	}); err != nil {
		t.Fatal(err)
	}
	if exp, want := rt3.CommExposedSeconds()-putExposed, 0.75*dur; exp < 0.99*want || exp > 1.01*want {
		t.Errorf("efficiency 0.25 exposed %v s, want ~%v", exp, want)
	}
}

// TestNbChannelSerialisesTransfers pins the per-process comm channel:
// two back-to-back nonblocking gets queue on the same channel, so the
// second's arrival (and hence an immediate wait) includes the first's
// in-flight time.
func TestNbChannelSerialisesTransfers(t *testing.T) {
	run, err := cluster.SystemA().Configure(1, 1)
	if err != nil {
		t.Fatal(err)
	}
	rt, err := NewRuntime(Config{Procs: 1, Mode: Cost, Run: &run, Overlap: true})
	if err != nil {
		t.Fatal(err)
	}
	g := tile.NewGrid(64, 64)
	a, err := rt.CreateTiled("a", []tile.Grid{g, g}, nil, tile.RoundRobin)
	if err != nil {
		t.Fatal(err)
	}
	if err := rt.Parallel(func(p *Proc) { p.PutT(a, nil, 0, 0) }); err != nil {
		t.Fatal(err)
	}
	if err := rt.Parallel(func(p *Proc) {
		h1 := p.NbGetT(a, nil, 0, 0)
		h2 := p.NbGetT(a, nil, 0, 0)
		if h2.arrival <= h1.arrival {
			t.Errorf("second transfer arrives at %v, first at %v; channel did not serialise", h2.arrival, h1.arrival)
		}
		if want := 2 * h1.dur; h2.arrival < 0.99*want {
			t.Errorf("second arrival %v, want ~%v (queued behind the first)", h2.arrival, want)
		}
		p.WaitAll(h1, h2)
	}); err != nil {
		t.Fatal(err)
	}
}

// TestNbExecuteFIFOApply checks deferred writes land in per-process
// program order and that Put/Acc staging frees the caller's buffer at
// issue: the source is clobbered immediately after issue and the tile
// still receives the staged values, in order.
func TestNbExecuteFIFOApply(t *testing.T) {
	rt := nbRuntime(t, Config{Procs: 1, Mode: Execute})
	g := tile.NewGrid(4, 4)
	a, err := rt.CreateTiled("a", []tile.Grid{g, g}, nil, tile.RoundRobin)
	if err != nil {
		t.Fatal(err)
	}
	defer rt.DestroyTiled(a)

	if err := rt.Parallel(func(p *Proc) {
		buf := make([]float64, 16)
		for i := range buf {
			buf[i] = 2
		}
		h1 := p.NbPutT(a, buf, 0, 0)
		for i := range buf { // staged: safe to reuse before Wait
			buf[i] = 3
		}
		h2 := p.NbAccT(a, 10, buf, 0, 0)
		for i := range buf {
			buf[i] = -99
		}
		p.WaitAll(h1, h2)

		dst := make([]float64, 16)
		hg := p.NbGetT(a, dst, 0, 0)
		hg.Wait(p)
		for i, v := range dst {
			if v != 32 { // put 2, then += 10*3: order matters
				t.Fatalf("dst[%d] = %v, want 32 (FIFO put-then-acc)", i, v)
			}
		}
	}); err != nil {
		t.Fatal(err)
	}
}

// TestNbStagingLedger checks the staging buffer of an in-flight NbPutT
// is charged to the issuing process's local-memory ledger until Wait.
func TestNbStagingLedger(t *testing.T) {
	rt := nbRuntime(t, Config{Procs: 1, Mode: Cost})
	g := tile.NewGrid(8, 8)
	a, err := rt.CreateTiled("a", []tile.Grid{g, g}, nil, tile.RoundRobin)
	if err != nil {
		t.Fatal(err)
	}
	if err := rt.Parallel(func(p *Proc) {
		base := p.Counters().Current()
		h := p.NbPutT(a, nil, 0, 0)
		if got := p.Counters().Current() - base; got != 64 {
			t.Errorf("in-flight staging charge %d words, want 64", got)
		}
		h.Wait(p)
		if got := p.Counters().Current() - base; got != 0 {
			t.Errorf("post-wait staging charge %d words, want 0", got)
		}
	}); err != nil {
		t.Fatal(err)
	}
}

// TestNbHandleLifecyclePanics pins the misuse panics: waiting twice,
// waiting another process's handle, and leaving a handle unwaited at
// region exit.
func TestNbHandleLifecyclePanics(t *testing.T) {
	rt := nbRuntime(t, Config{Procs: 2, Mode: Cost})
	g := tile.NewGrid(4, 4)
	a, err := rt.CreateTiled("a", []tile.Grid{g, g}, nil, tile.RoundRobin)
	if err != nil {
		t.Fatal(err)
	}
	if err := rt.Parallel(func(p *Proc) { p.PutT(a, nil, 0, 0) }); err != nil {
		t.Fatal(err)
	}

	err = rt.Parallel(func(p *Proc) {
		h := p.NbGetT(a, nil, 0, 0)
		h.Wait(p)
		h.Wait(p)
	})
	if err == nil || !strings.Contains(err.Error(), "waited twice") {
		t.Errorf("double wait: err = %v, want 'waited twice'", err)
	}

	err = rt.Parallel(func(p *Proc) {
		h := p.NbGetT(a, nil, 0, 0)
		defer h.Wait(p)
		if p.ID() == 0 {
			(&Handle{proc: 1}).Wait(p)
		}
	})
	if err == nil || !strings.Contains(err.Error(), "issued by process") {
		t.Errorf("cross-process wait: err = %v, want issuing-process panic", err)
	}

	err = rt.Parallel(func(p *Proc) {
		p.NbGetT(a, nil, 0, 0) // never waited
	})
	if err == nil || !strings.Contains(err.Error(), "unwaited at region exit") {
		t.Errorf("unwaited handle: err = %v, want region-exit panic", err)
	}
}

// TestFreeLocalTypedErrors pins the *BufferFreeError contract: double
// free, cross-process free and foreign buffers all fail with the typed
// error (surfaced through Parallel), each with its own reason.
func TestFreeLocalTypedErrors(t *testing.T) {
	cases := []struct {
		name   string
		body   func(p *Proc, foreign Buffer)
		reason string
		owner  int
	}{
		{
			name: "double free",
			body: func(p *Proc, _ Buffer) {
				b := p.MustAllocLocal(8)
				p.FreeLocal(b)
				p.FreeLocal(b)
			},
			reason: "double free", owner: 0,
		},
		{
			name: "cross-process free",
			body: func(p *Proc, foreign Buffer) {
				p.FreeLocal(foreign) // allocated by process 1
			},
			reason: "cross-process free", owner: 1,
		},
		{
			name: "foreign buffer",
			body: func(p *Proc, _ Buffer) {
				p.FreeLocal(Buffer{words: 4})
			},
			reason: "foreign buffer", owner: -1,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			rt, err := NewRuntime(Config{Procs: 2, Mode: Cost})
			if err != nil {
				t.Fatal(err)
			}
			// One writer behind the ID gate; guard the capture so the
			// handoff to the next region is explicitly synchronised.
			var mu sync.Mutex
			var foreign Buffer
			if err := rt.Parallel(func(p *Proc) {
				if p.ID() == 1 {
					mu.Lock()
					foreign = p.MustAllocLocal(8)
					mu.Unlock()
				}
			}); err != nil {
				t.Fatal(err)
			}
			err = rt.Parallel(func(p *Proc) {
				if p.ID() == 0 {
					tc.body(p, foreign)
				}
			})
			var fe *BufferFreeError
			if !errors.As(err, &fe) {
				t.Fatalf("err = %v, want *BufferFreeError", err)
			}
			if !strings.Contains(fe.Reason, tc.reason) {
				t.Errorf("reason = %q, want %q", fe.Reason, tc.reason)
			}
			if fe.Owner != tc.owner || fe.Proc != 0 {
				t.Errorf("owner/proc = %d/%d, want %d/0", fe.Owner, fe.Proc, tc.owner)
			}
		})
	}
}

// TestFreeLocalValidFreeStillWorks guards the happy path around the new
// checks: alloc/free cycles keep the ledger balanced.
func TestFreeLocalValidFreeStillWorks(t *testing.T) {
	rt, err := NewRuntime(Config{Procs: 2, Mode: Execute})
	if err != nil {
		t.Fatal(err)
	}
	if err := rt.Parallel(func(p *Proc) {
		for i := 0; i < 4; i++ {
			b := p.MustAllocLocal(16)
			p.FreeLocal(b)
		}
		if cur := p.Counters().Current(); cur != 0 {
			t.Errorf("process %d ledger %d words after balanced frees, want 0", p.ID(), cur)
		}
	}); err != nil {
		t.Fatal(err)
	}
}
