package ga

import (
	"testing"

	"fourindex/internal/cluster"
	"fourindex/internal/tile"
)

func TestPhasesAccumulateByName(t *testing.T) {
	run, err := cluster.SystemB().Configure(2, 28)
	if err != nil {
		t.Fatal(err)
	}
	rt, _ := NewRuntime(Config{Procs: 2, Mode: Cost, Run: &run})

	rt.BeginPhase("compute")
	_ = rt.Parallel(func(p *Proc) { p.Compute(1e9) })
	rt.BeginPhase("move")
	a, _ := rt.CreateTiled("x", []tile.Grid{tile.NewGrid(100, 10)}, nil, tile.RoundRobin)
	_ = rt.Parallel(func(p *Proc) {
		if p.ID() == 0 {
			p.PutT(a, nil, 3)
		}
	})
	rt.BeginPhase("compute") // accumulates into the first row
	_ = rt.Parallel(func(p *Proc) { p.Compute(1e9) })

	phases := rt.Phases()
	if len(phases) != 2 {
		t.Fatalf("got %d phases, want 2 (accumulated by name): %+v", len(phases), phases)
	}
	if phases[0].Name != "compute" || phases[1].Name != "move" {
		t.Errorf("phase order wrong: %+v", phases)
	}
	if phases[0].Flops != 4e9 { // 2 procs x 1e9, twice
		t.Errorf("compute flops = %d, want 4e9", phases[0].Flops)
	}
	if phases[0].Seconds <= 0 {
		t.Error("compute phase has no time")
	}
	if phases[1].IntraElements+phases[1].CommElements != 10 {
		t.Errorf("move phase traffic = %d+%d, want 10",
			phases[1].IntraElements, phases[1].CommElements)
	}
	if phases[1].Flops != 0 {
		t.Errorf("move phase flops = %d, want 0", phases[1].Flops)
	}
}

func TestPhasesEndPhase(t *testing.T) {
	rt, _ := NewRuntime(Config{Procs: 1, Mode: Cost})
	rt.BeginPhase("a")
	_ = rt.Parallel(func(p *Proc) { p.Compute(10) })
	rt.EndPhase()
	// Work after EndPhase belongs to no phase.
	_ = rt.Parallel(func(p *Proc) { p.Compute(5) })
	phases := rt.Phases()
	if len(phases) != 1 || phases[0].Flops != 10 {
		t.Errorf("phases = %+v", phases)
	}
}

func TestPhasesEmpty(t *testing.T) {
	rt, _ := NewRuntime(Config{Procs: 1, Mode: Cost})
	if got := rt.Phases(); got != nil {
		t.Errorf("no phases expected, got %+v", got)
	}
}

func TestComputeEffValidation(t *testing.T) {
	rt, _ := NewRuntime(Config{Procs: 1, Mode: Cost})
	err := rt.Parallel(func(p *Proc) { p.ComputeEff(10, 0) })
	if err == nil {
		t.Error("eff = 0 should fail")
	}
	err = rt.Parallel(func(p *Proc) { p.ComputeEff(10, 1.5) })
	if err == nil {
		t.Error("eff > 1 should fail")
	}
}

func TestComputeEffSlowsClockNotFlops(t *testing.T) {
	run, _ := cluster.SystemB().Configure(1, 28)
	rtFast, _ := NewRuntime(Config{Procs: 1, Mode: Cost, Run: &run})
	rtSlow, _ := NewRuntime(Config{Procs: 1, Mode: Cost, Run: &run})
	_ = rtFast.Parallel(func(p *Proc) { p.ComputeEff(1e9, 1) })
	_ = rtSlow.Parallel(func(p *Proc) { p.ComputeEff(1e9, 0.25) })
	if rtFast.Totals().Flops != rtSlow.Totals().Flops {
		t.Error("flop counts must not depend on efficiency")
	}
	ratio := rtSlow.Elapsed() / rtFast.Elapsed()
	if ratio < 3.9 || ratio > 4.1 {
		t.Errorf("eff=0.25 should be 4x slower, got %vx", ratio)
	}
}

func TestSpillTensorChargesDisk(t *testing.T) {
	run, _ := cluster.SystemA().Configure(2, 8)
	rt, _ := NewRuntime(Config{
		Procs: 2, Mode: Cost, Run: &run,
		GlobalMemBytes: 100, AllowSpill: true,
	})
	a, err := rt.CreateTiled("big", []tile.Grid{tile.NewGrid(1000, 100)}, nil, tile.RoundRobin)
	if err != nil {
		t.Fatal(err)
	}
	if !a.OnDisk() {
		t.Fatal("oversized tensor should be disk-resident")
	}
	if rt.GlobalBytes() != 0 {
		t.Error("disk tensor must not charge aggregate memory")
	}
	_ = rt.Parallel(func(p *Proc) {
		if p.ID() == 0 {
			p.PutT(a, nil, 2)
			p.GetT(a, nil, 2)
		}
	})
	if rt.DiskVolume() != 200 {
		t.Errorf("disk volume = %d, want 200", rt.DiskVolume())
	}
	if rt.CommVolume() != 0 {
		t.Error("disk traffic must not count as network communication")
	}
	if rt.Elapsed() <= 0 {
		t.Error("disk transfers should advance the clock")
	}
	rt.DestroyTiled(a)
	if rt.LiveArrays() != 0 {
		t.Error("disk tensor not released")
	}
}

func TestSpillDisabledStillOOMs(t *testing.T) {
	rt, _ := NewRuntime(Config{Procs: 1, Mode: Cost, GlobalMemBytes: 100})
	if _, err := rt.CreateTiled("big", []tile.Grid{tile.NewGrid(1000, 100)}, nil, tile.RoundRobin); err == nil {
		t.Error("expected OOM without AllowSpill")
	}
}

func TestIdleFraction(t *testing.T) {
	run, _ := cluster.SystemB().Configure(4, 28)
	rt, _ := NewRuntime(Config{Procs: 4, Mode: Cost, Run: &run})
	// One proc does all the work: 3/4 of process-time is idle.
	_ = rt.Parallel(func(p *Proc) {
		if p.ID() == 0 {
			p.Compute(4e9)
		}
	})
	got := rt.IdleFraction()
	if got < 0.74 || got > 0.76 {
		t.Errorf("IdleFraction = %v, want 0.75", got)
	}
	// Balanced work adds no idle.
	rt2, _ := NewRuntime(Config{Procs: 4, Mode: Cost, Run: &run})
	_ = rt2.Parallel(func(p *Proc) { p.Compute(1e9) })
	if f := rt2.IdleFraction(); f != 0 {
		t.Errorf("balanced IdleFraction = %v, want 0", f)
	}
	// No cost model: zero.
	rt3, _ := NewRuntime(Config{Procs: 2, Mode: Cost})
	_ = rt3.Parallel(func(p *Proc) {})
	if rt3.IdleFraction() != 0 {
		t.Error("IdleFraction without model should be 0")
	}
}
