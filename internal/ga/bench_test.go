package ga

import (
	"testing"

	"fourindex/internal/tile"
)

func BenchmarkTiledGetPut(b *testing.B) {
	rt, _ := NewRuntime(Config{Procs: 4, Mode: Execute})
	a, _ := rt.CreateTiled("T", []tile.Grid{tile.NewGrid(64, 16), tile.NewGrid(64, 16)}, nil, tile.RoundRobin)
	buf := make([]float64, 16*16)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = rt.Parallel(func(p *Proc) {
			if p.ID() != 0 {
				return
			}
			p.PutT(a, buf, i%4, (i+1)%4)
			p.GetT(a, buf, i%4, (i+1)%4)
		})
	}
}

func BenchmarkTiledCostModeOps(b *testing.B) {
	rt, _ := NewRuntime(Config{Procs: 1, Mode: Cost})
	a, _ := rt.CreateTiled("T", []tile.Grid{tile.NewGrid(1024, 32), tile.NewGrid(1024, 32)}, nil, tile.RoundRobin)
	b.ResetTimer()
	_ = rt.Parallel(func(p *Proc) {
		for i := 0; i < b.N; i++ {
			p.GetT(a, nil, i%32, (i*7)%32)
		}
	})
}

func BenchmarkParallelRegion(b *testing.B) {
	rt, _ := NewRuntime(Config{Procs: 16, Mode: Cost})
	for i := 0; i < b.N; i++ {
		_ = rt.Parallel(func(p *Proc) { p.Compute(1) })
	}
}
