package ga

import (
	"strings"
	"testing"

	"fourindex/internal/tile"
)

// TestGetTShortBufferPanicsBothPaths is the regression test for the
// silent-truncation bug: GetT of a symmetry-forbidden (unstored) tile
// used to zero only len(buf) elements of a short buffer while the
// stored path panicked, so the same schedule bug surfaced or hid
// depending on sparsity. Both paths must panic identically now.
func TestGetTShortBufferPanicsBothPaths(t *testing.T) {
	rt := newExec(t, 1)
	a, err := rt.CreateTiledSparse("S", grids(4, 2, 2), nil, tile.RoundRobin,
		func(coords []int) bool { return coords[0] == 0 })
	if err != nil {
		t.Fatal(err)
	}
	short := make([]float64, 3) // tile words = 4

	err = rt.Parallel(func(p *Proc) {
		p.GetT(a, short, 0, 0) // stored tile
	})
	if err == nil || !strings.Contains(err.Error(), "GetT buffer") {
		t.Errorf("stored-tile short buffer: got %v, want GetT buffer panic", err)
	}
	err = rt.Parallel(func(p *Proc) {
		p.GetT(a, short, 1, 0) // symmetry-forbidden tile
	})
	if err == nil || !strings.Contains(err.Error(), "GetT buffer") {
		t.Errorf("forbidden-tile short buffer: got %v, want GetT buffer panic", err)
	}

	// A full-length buffer reads forbidden tiles as zeros, as before.
	full := []float64{7, 7, 7, 7}
	if err := rt.Parallel(func(p *Proc) {
		p.GetT(a, full, 1, 0)
	}); err != nil {
		t.Fatal(err)
	}
	for i, v := range full {
		if v != 0 {
			t.Errorf("forbidden tile element %d = %v, want 0", i, v)
		}
	}
}

// TestFreezeSemantics pins the immutable-after-sync contract: reads
// still work (and return the written data), while PutT, AccT and
// RestoreTiles on a frozen tensor panic.
func TestFreezeSemantics(t *testing.T) {
	rt := newExec(t, 2)
	a, err := rt.CreateTiled("F", grids(4, 2, 2), nil, tile.RoundRobin)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{1, 2, 3, 4}
	if err := rt.Parallel(func(p *Proc) {
		if p.ID() == 0 {
			p.PutT(a, want, 0, 0)
		}
	}); err != nil {
		t.Fatal(err)
	}
	if a.Frozen() {
		t.Fatal("tensor frozen before Freeze")
	}
	a.Freeze()
	a.Freeze() // idempotent
	if !a.Frozen() {
		t.Fatal("Frozen() false after Freeze")
	}

	got := make([]float64, 4)
	if err := rt.Parallel(func(p *Proc) {
		buf := make([]float64, 4)
		p.GetT(a, buf, 0, 0)
		p.GetT(a, buf, 1, 1) // unwritten tile still reads as zeros
		p.GetT(a, buf, 0, 0)
		if p.ID() == 0 {
			copy(got, buf)
		}
	}); err != nil {
		t.Fatal(err)
	}
	for i, v := range want {
		if got[i] != v {
			t.Errorf("frozen read [%d] = %v, want %v", i, got[i], v)
		}
	}

	if err := rt.Parallel(func(p *Proc) {
		p.PutT(a, want, 0, 0)
	}); err == nil || !strings.Contains(err.Error(), "frozen") {
		t.Errorf("PutT on frozen tensor: got %v, want frozen panic", err)
	}
	if err := rt.Parallel(func(p *Proc) {
		p.AccT(a, 1, want, 0, 0)
	}); err == nil || !strings.Contains(err.Error(), "frozen") {
		t.Errorf("AccT on frozen tensor: got %v, want frozen panic", err)
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Error("RestoreTiles on frozen tensor did not panic")
			}
		}()
		a.RestoreTiles(nil)
	}()
	rt.DestroyTiled(a)
}

// TestAllocLocalPoolZeroed pins the AllocLocal zeroed-storage contract
// across pool reuse: a buffer dirtied and freed must come back zeroed
// (the fused schedules accumulate GEMMs into fresh allocations).
func TestAllocLocalPoolZeroed(t *testing.T) {
	rt := newExec(t, 1)
	if err := rt.Parallel(func(p *Proc) {
		for round := 0; round < 3; round++ {
			b := p.MustAllocLocal(100)
			for i := range b.Data {
				if b.Data[i] != 0 {
					t.Errorf("round %d: reused buffer element %d = %v, want 0", round, i, b.Data[i])
					break
				}
				b.Data[i] = 42
			}
			p.FreeLocal(b)
		}
		// A different length landing in the same bucket must also be
		// fully zeroed and correctly sized.
		b := p.MustAllocLocal(65)
		if len(b.Data) != 65 {
			t.Errorf("len = %d, want 65", len(b.Data))
		}
		for i := range b.Data {
			if b.Data[i] != 0 {
				t.Errorf("bucket-shared buffer element %d = %v, want 0", i, b.Data[i])
				break
			}
		}
		p.FreeLocal(b)
	}); err != nil {
		t.Fatal(err)
	}
}
