package ga

import (
	"errors"
	"testing"

	"fourindex/internal/sym"
	"fourindex/internal/tile"
)

func grids(n, t, dims int) []tile.Grid {
	g := tile.NewGrid(n, t)
	out := make([]tile.Grid, dims)
	for i := range out {
		out[i] = g
	}
	return out
}

func TestCreateTiledPlain(t *testing.T) {
	rt := newExec(t, 2)
	a, err := rt.CreateTiled("T", grids(6, 2, 2), nil, tile.RoundRobin)
	if err != nil {
		t.Fatal(err)
	}
	if a.NumTiles() != 9 {
		t.Errorf("NumTiles = %d, want 9", a.NumTiles())
	}
	if a.Bytes() != 6*6*8 {
		t.Errorf("Bytes = %d, want full 6x6 matrix", a.Bytes())
	}
	rt.DestroyTiled(a)
}

func TestCreateTiledSymmetricStorage(t *testing.T) {
	rt := newExec(t, 2)
	// 4D tensor with both pairs symmetric at 3x3 tile blocks of width 2.
	a, err := rt.CreateTiled("A", grids(6, 2, 4), [][2]int{{0, 1}, {2, 3}}, tile.RoundRobin)
	if err != nil {
		t.Fatal(err)
	}
	// Canonical blocks per pair: Pairs(3) = 6; each block 2*2 = 4
	// elements per pair dim -> total = (6*4)^2 = 576 words.
	if a.NumTiles() != 36 {
		t.Errorf("NumTiles = %d, want 36", a.NumTiles())
	}
	if a.Bytes() != 576*8 {
		t.Errorf("Bytes = %d, want %d", a.Bytes(), 576*8)
	}
	// Block-symmetric storage is bounded by full size and close to the
	// packed Table 1 count for fine tilings.
	full := int64(6 * 6 * 6 * 6 * 8)
	if a.Bytes() >= full {
		t.Error("symmetric storage should be far below full")
	}
	packed := sym.ExactSizes(6, 1).A * 8
	if a.Bytes() < packed {
		t.Error("block storage cannot be below exact packed size")
	}
	rt.DestroyTiled(a)
}

func TestCreateTiledValidation(t *testing.T) {
	rt := newExec(t, 1)
	if _, err := rt.CreateTiled("x", nil, nil, tile.RoundRobin); err == nil {
		t.Error("no dims should error")
	}
	if _, err := rt.CreateTiled("x", grids(4, 2, 2), [][2]int{{0, 2}}, tile.RoundRobin); err == nil {
		t.Error("non-adjacent pair should error")
	}
	gs := []tile.Grid{tile.NewGrid(4, 2), tile.NewGrid(4, 3)}
	if _, err := rt.CreateTiled("x", gs, [][2]int{{0, 1}}, tile.RoundRobin); err == nil {
		t.Error("mismatched pair grids should error")
	}
}

func TestTiledPutGetRoundTrip(t *testing.T) {
	rt := newExec(t, 3)
	a, _ := rt.CreateTiled("T", grids(5, 2, 3), nil, tile.RoundRobin)
	err := rt.Parallel(func(p *Proc) {
		if p.ID() != 0 {
			return
		}
		shape := a.TileShape([]int{1, 1, 2})
		if shape[0] != 2 || shape[1] != 2 || shape[2] != 1 { // ragged last dim
			t.Errorf("shape = %v", shape)
		}
		w := a.TileWords([]int{1, 1, 2})
		buf := make([]float64, w)
		for i := range buf {
			buf[i] = float64(i) + 1
		}
		p.PutT(a, buf, 1, 1, 2)
		got := make([]float64, w)
		if n := p.GetT(a, got, 1, 1, 2); n != w {
			t.Errorf("GetT returned %d words, want %d", n, w)
		}
		for i := range got {
			if got[i] != buf[i] {
				t.Errorf("got[%d] = %v", i, got[i])
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestTiledGetUnwrittenIsZero(t *testing.T) {
	rt := newExec(t, 1)
	a, _ := rt.CreateTiled("T", grids(4, 2, 2), nil, tile.RoundRobin)
	_ = rt.Parallel(func(p *Proc) {
		buf := []float64{9, 9, 9, 9}
		p.GetT(a, buf, 0, 0)
		for _, v := range buf {
			if v != 0 {
				t.Error("unwritten tile should read as zeros")
			}
		}
	})
}

func TestTiledAccAccumulates(t *testing.T) {
	rt := newExec(t, 4)
	a, _ := rt.CreateTiled("C", grids(4, 2, 2), nil, tile.RoundRobin)
	err := rt.Parallel(func(p *Proc) {
		buf := []float64{1, 1, 1, 1}
		p.AccT(a, 2, buf, 1, 0)
	})
	if err != nil {
		t.Fatal(err)
	}
	_ = rt.Parallel(func(p *Proc) {
		if p.ID() != 0 {
			return
		}
		got := make([]float64, 4)
		p.GetT(a, got, 1, 0)
		for _, v := range got {
			if v != 8 { // 4 procs x alpha 2
				t.Errorf("acc value = %v, want 8", v)
			}
		}
	})
}

func TestTiledNonCanonicalPanics(t *testing.T) {
	rt := newExec(t, 1)
	a, _ := rt.CreateTiled("A", grids(4, 2, 2), [][2]int{{0, 1}}, tile.RoundRobin)
	err := rt.Parallel(func(p *Proc) {
		p.GetT(a, make([]float64, 4), 0, 1) // t0 < t1: non-canonical
	})
	if err == nil {
		t.Error("non-canonical symmetric tile access should fail")
	}
}

func TestTiledRemoteAccounting(t *testing.T) {
	rt := newExec(t, 2)
	a, _ := rt.CreateTiled("T", grids(4, 2, 2), nil, tile.RoundRobin)
	// 4 tiles round-robin: tile (0,0) id 0 -> proc 0, (0,1) id 1 -> proc 1.
	err := rt.Parallel(func(p *Proc) {
		if p.ID() != 0 {
			return
		}
		buf := make([]float64, 4)
		p.PutT(a, buf, 0, 0) // local
		p.PutT(a, buf, 0, 1) // remote
	})
	if err != nil {
		t.Fatal(err)
	}
	if rt.CommVolume() != 4 || rt.IntraVolume() != 4 {
		t.Errorf("comm=%d intra=%d, want 4/4", rt.CommVolume(), rt.IntraVolume())
	}
}

func TestTiledGlobalOOM(t *testing.T) {
	rt, _ := NewRuntime(Config{Procs: 1, Mode: Cost, GlobalMemBytes: 100})
	if _, err := rt.CreateTiled("big", grids(100, 10, 2), nil, tile.RoundRobin); !errors.Is(err, ErrGlobalOOM) {
		t.Errorf("want ErrGlobalOOM, got %v", err)
	}
}

func TestTiledCostModeHugeTensor(t *testing.T) {
	rt, _ := NewRuntime(Config{Procs: 4, Mode: Cost})
	// n = 1194 (Shell-Mixed) with 40-wide tiles: must be fast and
	// allocation-free.
	a, err := rt.CreateTiled("A", grids(1194, 40, 4), [][2]int{{0, 1}, {2, 3}}, tile.RoundRobin)
	if err != nil {
		t.Fatal(err)
	}
	n4 := int64(1194) * 1194 * 1194 * 1194
	// Block-symmetric ~ n^4/4 within ~10%.
	ratio := float64(a.Bytes()) / (float64(n4) / 4 * 8)
	if ratio < 1.0 || ratio > 1.10 {
		t.Errorf("block-symmetric overhead ratio = %v", ratio)
	}
	err = rt.Parallel(func(p *Proc) {
		if p.ID() == 0 {
			w := p.GetT(a, nil, 5, 3, 7, 2)
			if w != 40*40*40*40 {
				t.Errorf("tile words = %d", w)
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	rt.DestroyTiled(a)
}

func TestTiledStrict(t *testing.T) {
	rt, _ := NewRuntime(Config{Procs: 1, Mode: Execute, Strict: true})
	a, _ := rt.CreateTiled("T", grids(4, 2, 2), nil, tile.RoundRobin)
	if err := rt.Parallel(func(p *Proc) {
		p.GetT(a, make([]float64, 4), 0, 0)
	}); err == nil {
		t.Error("strict GetT of unwritten tile should fail")
	}
	if err := rt.Parallel(func(p *Proc) {
		p.AccT(a, 1, make([]float64, 4), 0, 0)
		p.GetT(a, make([]float64, 4), 0, 0)
	}); err != nil {
		t.Errorf("Acc marks written: %v", err)
	}
}

func TestTiledDoubleDestroyPanics(t *testing.T) {
	rt := newExec(t, 1)
	a, _ := rt.CreateTiled("T", grids(4, 2, 2), nil, tile.RoundRobin)
	rt.DestroyTiled(a)
	defer func() {
		if recover() == nil {
			t.Error("double destroy did not panic")
		}
	}()
	rt.DestroyTiled(a)
}

func TestTiledOwnerStable(t *testing.T) {
	rt := newExec(t, 3)
	a, _ := rt.CreateTiled("A", grids(6, 2, 4), [][2]int{{0, 1}}, tile.RoundRobin)
	// Owner must be deterministic and in range.
	for ti := 0; ti < 3; ti++ {
		for tj := 0; tj <= ti; tj++ {
			o := a.Owner(ti, tj, 0, 1)
			if o < 0 || o >= 3 {
				t.Fatalf("owner %d out of range", o)
			}
			if o != a.Owner(ti, tj, 0, 1) {
				t.Fatal("owner not deterministic")
			}
		}
	}
}
