package ga

import (
	"fmt"
	"strings"
	"sync/atomic"
	"testing"

	"fourindex/internal/tile"
)

// TestStressConcurrentAccSingleTile hammers atomic accumulation from
// every process into one shared tile, interleaved with barriers, and
// checks the result is the exact deterministic sum. Run under
// `go test -race -count=5` in CI, this exercises the per-tile write
// locks, the counter atomics, and the clock barrier together — the
// machinery the runtime's cost/execute equivalence rests on.
func TestStressConcurrentAccSingleTile(t *testing.T) {
	const (
		procs  = 8
		rounds = 50
		dim    = 6
	)
	rt, err := NewRuntime(Config{Procs: procs, Mode: Execute})
	if err != nil {
		t.Fatal(err)
	}
	// One dim x dim tile: every Acc from every process contends for the
	// same tile lock.
	a, err := rt.Create("hot", dim, dim, dim, dim, tile.RoundRobin)
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Destroy(a)

	zero := make([]float64, dim*dim)
	if err := rt.Parallel(func(p *Proc) {
		if p.ID() == 0 {
			p.Put(a, 0, dim, 0, dim, zero, dim)
		}
	}); err != nil {
		t.Fatal(err)
	}

	if err := rt.Parallel(func(p *Proc) {
		buf := p.MustAllocLocal(dim * dim)
		for i := range buf.Data {
			buf.Data[i] = 1
		}
		for r := 0; r < rounds; r++ {
			p.Acc(a, 0, dim, 0, dim, float64(p.ID()+1), buf.Data, dim)
			if r%10 == 0 {
				p.Barrier()
			}
		}
		p.FreeLocal(buf)
	}); err != nil {
		t.Fatal(err)
	}

	// Sum over processes of rounds * (id+1): deterministic regardless
	// of interleaving.
	want := 0.0
	for id := 1; id <= procs; id++ {
		want += float64(rounds * id)
	}
	for i, v := range a.ReadAll() {
		if v != want {
			t.Fatalf("element %d = %v, want %v", i, v, want)
		}
	}
}

// TestStressBarrierPoisonUnderLoad panics one process while the others
// are looping through barriers and accumulations, then reuses the
// runtime. The poisoned barrier must release every sibling (no
// deadlock), surface exactly the original panic value, and re-arm for
// the next region.
func TestStressBarrierPoisonUnderLoad(t *testing.T) {
	const procs = 8
	rt, err := NewRuntime(Config{Procs: procs, Mode: Execute})
	if err != nil {
		t.Fatal(err)
	}
	a, err := rt.Create("poison", 4, 4, 2, 2, tile.RoundRobin)
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Destroy(a)

	for trial := 0; trial < 3; trial++ {
		var released atomic.Int64
		err := rt.Parallel(func(p *Proc) {
			defer released.Add(1)
			buf := p.MustAllocLocal(4)
			defer p.FreeLocal(buf)
			for r := 0; ; r++ {
				p.Acc(a, 0, 2, 0, 2, 1, buf.Data, 2)
				if p.ID() == trial && r == 2 {
					panic(fmt.Errorf("proc %d gives up", p.ID()))
				}
				p.Barrier()
			}
		})
		if err == nil {
			t.Fatalf("trial %d: Parallel returned nil, want poisoned-region error", trial)
		}
		if !strings.Contains(err.Error(), "gives up") {
			t.Fatalf("trial %d: error %v does not carry the panic value", trial, err)
		}
		if got := released.Load(); got != procs {
			t.Fatalf("trial %d: %d of %d processes released from poisoned barrier", trial, got, procs)
		}

		// The barrier must be re-armed: a full region with barriers
		// runs to completion afterwards.
		if err := rt.Parallel(func(p *Proc) {
			p.Barrier()
			p.Barrier()
		}); err != nil {
			t.Fatalf("trial %d: region after poison failed: %v", trial, err)
		}
	}
}

// TestStressFrozenTileLockFreeReads writes one hot tile inside a
// region, freezes the tensor at the following sync point, and then has
// every process read that same tile in a tight loop from a second
// region. Frozen tensors take the lock-free GetT fast path, so this is
// exactly the schedule shape (producer region -> GA_Sync -> consumer
// region) whose safety rests on the region boundary's happens-before
// edge. Run under `go test -race -count=5` in CI.
func TestStressFrozenTileLockFreeReads(t *testing.T) {
	const (
		procs  = 8
		rounds = 200
		dim    = 6
	)
	rt, err := NewRuntime(Config{Procs: procs, Mode: Execute})
	if err != nil {
		t.Fatal(err)
	}
	a, err := rt.CreateTiled("B", grids(dim, dim, 2), nil, tile.RoundRobin)
	if err != nil {
		t.Fatal(err)
	}
	defer rt.DestroyTiled(a)

	want := make([]float64, dim*dim)
	for i := range want {
		want[i] = float64(i + 1)
	}
	if err := rt.Parallel(func(p *Proc) {
		if p.ID() == 0 {
			p.PutT(a, want, 0, 0)
		}
	}); err != nil {
		t.Fatal(err)
	}
	a.Freeze()

	var reads atomic.Int64
	if err := rt.Parallel(func(p *Proc) {
		buf := p.MustAllocLocal(dim * dim)
		defer p.FreeLocal(buf)
		for r := 0; r < rounds; r++ {
			p.GetT(a, buf.Data, 0, 0)
			for i, v := range buf.Data {
				if v != want[i] {
					panic(fmt.Errorf("proc %d round %d: element %d = %v, want %v",
						p.ID(), r, i, v, want[i]))
				}
			}
			reads.Add(1)
		}
	}); err != nil {
		t.Fatal(err)
	}
	if got := reads.Load(); got != procs*rounds {
		t.Fatalf("completed %d reads, want %d", got, procs*rounds)
	}
}

// TestStressLocalLedgerBalanced checks that the concurrent stress
// leaves every per-process local-memory ledger at zero — the invariant
// gadiscipline enforces statically and the runtime tracks dynamically.
func TestStressLocalLedgerBalanced(t *testing.T) {
	const procs = 6
	rt, err := NewRuntime(Config{Procs: procs, Mode: Execute, LocalMemBytes: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	if err := rt.Parallel(func(p *Proc) {
		for i := 0; i < 100; i++ {
			b, err := p.AllocLocal(128)
			if err != nil {
				panic(err) // 128 words fit well under the 1 MiB cap
			}
			p.FreeLocal(b)
		}
	}); err != nil {
		t.Fatal(err)
	}
	for pid := 0; pid < procs; pid++ {
		if cur := rt.ProcCounters(pid).Current(); cur != 0 {
			t.Errorf("process %d local ledger = %d elements, want 0", pid, cur)
		}
	}
}

// TestStressConcurrentNbPrefetch exercises the nonblocking path the way
// the schedules use it, under maximal contention: every process
// double-buffer prefetches all tiles of a shared frozen input with
// NbGetT while streaming NbAccT updates at a single hot output tile
// through a two-deep write window. Run under the race detector, this
// covers the worker-chain FIFO, handle-owned staging, the frozen
// lock-free read inside a deferred get, and the pooled staging buffers
// racing with AllocLocal.
func TestStressConcurrentNbPrefetch(t *testing.T) {
	const (
		procs  = 8
		rounds = 20
		nt     = 4
		dim    = 5
	)
	rt, err := NewRuntime(Config{Procs: procs, Mode: Execute, Overlap: true})
	if err != nil {
		t.Fatal(err)
	}
	g := tile.NewGrid(nt*dim, dim)
	in, err := rt.CreateTiled("in", []tile.Grid{g, g}, nil, tile.RoundRobin)
	if err != nil {
		t.Fatal(err)
	}
	defer rt.DestroyTiled(in)
	out, err := rt.CreateTiled("out", []tile.Grid{g, g}, nil, tile.RoundRobin)
	if err != nil {
		t.Fatal(err)
	}
	defer rt.DestroyTiled(out)

	words := dim * dim
	if err := rt.Parallel(func(p *Proc) {
		buf := p.MustAllocLocal(int64(words))
		defer p.FreeLocal(buf)
		for ti := 0; ti < nt; ti++ {
			for tj := 0; tj < nt; tj++ {
				if workOwner := (ti*nt + tj) % procs; workOwner != p.ID() {
					continue
				}
				for i := range buf.Data {
					buf.Data[i] = float64(ti*nt + tj)
				}
				p.NbPutT(in, buf.Data, ti, tj).Wait(p)
				zero := make([]float64, words)
				p.PutT(out, zero, ti, tj)
			}
		}
	}); err != nil {
		t.Fatal(err)
	}
	in.Freeze()

	// Each round every process sweeps all tiles with a two-slot prefetch
	// pipeline and accumulates each tile's value into out[0,0].
	if err := rt.Parallel(func(p *Proc) {
		tmp := p.MustAllocLocal(int64(2 * words))
		defer p.FreeLocal(tmp)
		acc := p.MustAllocLocal(int64(words))
		defer p.FreeLocal(acc)
		issue := func(k int) *Handle {
			ti, tj := k/nt, k%nt
			half := tmp.Data[(k%2)*words : (k%2)*words+words]
			return p.NbGetT(in, half, ti, tj)
		}
		var wprev *Handle
		for r := 0; r < rounds; r++ {
			h := issue(0)
			for k := 0; k < nt*nt; k++ {
				var next *Handle
				if k+1 < nt*nt {
					next = issue(k + 1)
				}
				h.Wait(p)
				got := tmp.Data[(k%2)*words]
				if got != float64(k) {
					panic(fmt.Errorf("proc %d round %d tile %d: prefetched %v, want %d", p.ID(), r, k, got, k))
				}
				for i := range acc.Data {
					acc.Data[i] = got
				}
				wprev.Wait(p)
				wprev = p.NbAccT(out, 1, acc.Data, 0, 0)
				h = next
			}
		}
		wprev.Wait(p)
	}); err != nil {
		t.Fatal(err)
	}

	// Every process added sum(0..nt*nt-1) per round into out[0,0].
	want := 0.0
	for k := 0; k < nt*nt; k++ {
		want += float64(k)
	}
	want *= procs * rounds
	buf := make([]float64, words)
	if err := rt.Parallel(func(p *Proc) {
		if p.ID() == 0 {
			p.GetT(out, buf, 0, 0)
		}
	}); err != nil {
		t.Fatal(err)
	}
	for i, v := range buf {
		if v != want {
			t.Fatalf("out[0,0][%d] = %v, want %v", i, v, want)
		}
	}
}
