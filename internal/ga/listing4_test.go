package ga

import (
	"math/rand"
	"sync"
	"testing"
	"testing/quick"

	"fourindex/internal/blas"
	"fourindex/internal/tile"
)

// TestListing4PatchContraction reproduces the paper's Listing 4 on the
// classic patch-level GA interface: the contraction
// C[alpha,(j,k,l)] += A[i,(j,k,l)] . B[alpha,i] with owner-computes
// work distribution, GA_Get of input patches and GA_Put of output
// patches — verified against a direct dense evaluation.
func TestListing4PatchContraction(t *testing.T) {
	const (
		n     = 6 // extent of every index
		procs = 3 //
		tw    = 2 // tile width
	)
	rest := n * n * n // flattened (j, k, l)
	rng := rand.New(rand.NewSource(5))

	rt := newExec(t, procs)
	aGA, err := rt.Create("A", n, rest, tw, tw*n, tile.RoundRobin)
	if err != nil {
		t.Fatal(err)
	}
	bGA, err := rt.Create("B", n, n, tw, tw, tile.RoundRobin)
	if err != nil {
		t.Fatal(err)
	}
	cGA, err := rt.Create("C", n, rest, tw, tw*n, tile.RoundRobin)
	if err != nil {
		t.Fatal(err)
	}

	// Populate A and B (proc 0 writes; GA_Sync at region end).
	aData := make([]float64, n*rest)
	bData := make([]float64, n*n)
	for i := range aData {
		aData[i] = rng.NormFloat64()
	}
	for i := range bData {
		bData[i] = rng.NormFloat64()
	}
	if err := rt.Parallel(func(p *Proc) {
		if p.ID() != 0 {
			return
		}
		p.Put(aGA, 0, n, 0, rest, aData, rest)
		p.Put(bGA, 0, n, 0, n, bData, n)
	}); err != nil {
		t.Fatal(err)
	}

	// Listing 4: loop over output tiles; the owner Gets the inputs,
	// DGEMMs, and Puts its tile.
	if err := rt.Parallel(func(p *Proc) {
		for ta := 0; ta < cGA.RGrid.NumTiles(); ta++ {
			for tc := 0; tc < cGA.CGrid.NumTiles(); tc++ {
				if cGA.TileOwner(ta, tc) != p.ID() {
					continue
				}
				a0, a1 := cGA.RGrid.Bounds(ta)
				c0, c1 := cGA.CGrid.Bounds(tc)
				wa, wc := a1-a0, c1-c0

				bufA := make([]float64, n*wc)
				p.Get(aGA, 0, n, c0, c1, bufA, wc)
				bufB := make([]float64, wa*n)
				p.Get(bGA, a0, a1, 0, n, bufB, n)
				bufC := make([]float64, wa*wc)
				blas.Dgemm(false, false, wa, wc, n, 1, bufB, n, bufA, wc, 0, bufC, wc)
				p.Put(cGA, a0, a1, c0, c1, bufC, wc)
			}
		}
	}); err != nil {
		t.Fatal(err)
	}

	// Verify against the direct evaluation.
	got := cGA.ReadAll()
	for alpha := 0; alpha < n; alpha++ {
		for col := 0; col < rest; col++ {
			var want float64
			for i := 0; i < n; i++ {
				want += bData[alpha*n+i] * aData[i*rest+col]
			}
			if diff := got[alpha*rest+col] - want; diff > 1e-10 || diff < -1e-10 {
				t.Fatalf("C[%d,%d] off by %v", alpha, col, diff)
			}
		}
	}
	rt.Destroy(aGA)
	rt.Destroy(bGA)
	rt.Destroy(cGA)
}

// Property: random rectangular Put/Get patches reconstruct exactly what
// was written, across tile boundaries and processes.
func TestQuickPatchRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		rows, cols := 3+rng.Intn(12), 3+rng.Intn(12)
		rt, err := NewRuntime(Config{Procs: 1 + rng.Intn(4), Mode: Execute})
		if err != nil {
			return false
		}
		a, err := rt.Create("A", rows, cols, 1+rng.Intn(5), 1+rng.Intn(5), tile.Policy(rng.Intn(3)))
		if err != nil {
			return false
		}
		r0 := rng.Intn(rows)
		r1 := r0 + 1 + rng.Intn(rows-r0)
		c0 := rng.Intn(cols)
		c1 := c0 + 1 + rng.Intn(cols-c0)
		w := c1 - c0
		buf := make([]float64, (r1-r0)*w)
		for i := range buf {
			buf[i] = rng.NormFloat64()
		}
		// Only proc 0 writes ok today, but guard the capture anyway so
		// the check stays safe if the ID gate changes.
		var mu sync.Mutex
		ok := true
		err = rt.Parallel(func(p *Proc) {
			if p.ID() != 0 {
				return
			}
			p.Put(a, r0, r1, c0, c1, buf, w)
			got := make([]float64, len(buf))
			p.Get(a, r0, r1, c0, c1, got, w)
			for i := range got {
				if got[i] != buf[i] {
					mu.Lock()
					ok = false
					mu.Unlock()
				}
			}
		})
		return err == nil && ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}
