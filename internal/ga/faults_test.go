package ga

import (
	"errors"
	"testing"

	"fourindex/internal/cluster"
	"fourindex/internal/faults"
	"fourindex/internal/tile"
	"fourindex/internal/trace"
)

// A transient fault rate well inside the retry budget must be fully
// absorbed: the region succeeds, retries land in the metrics, and the
// moved data is identical to a fault-free run.
func TestTransientFaultsAbsorbedByRetry(t *testing.T) {
	run, err := cluster.SystemA().Configure(2, 8)
	if err != nil {
		t.Fatal(err)
	}
	tr := trace.New(0)
	rt, err := NewRuntime(Config{
		Procs: 2, Mode: Execute, Run: &run, Tracer: tr,
		Faults: &faults.Plan{Seed: 11, TransientRate: 0.2},
	})
	if err != nil {
		t.Fatal(err)
	}
	a, err := rt.Create("A", 8, 8, 2, 2, tile.RoundRobin)
	if err != nil {
		t.Fatal(err)
	}
	err = rt.Parallel(func(p *Proc) {
		buf := make([]float64, 16)
		for i := range buf {
			buf[i] = float64(p.ID()*16 + i)
		}
		for rep := 0; rep < 10; rep++ {
			p.Put(a, p.ID()*4, p.ID()*4+4, 0, 4, buf, 4)
			p.Get(a, p.ID()*4, p.ID()*4+4, 0, 4, buf, 4)
		}
	})
	if err != nil {
		t.Fatalf("region with transient faults should succeed via retries: %v", err)
	}
	if got := rt.Totals().Retries; got == 0 {
		t.Error("expected at least one recorded retry at 20% fault rate")
	}
	var retryEvents int
	for _, ev := range tr.Events() {
		if ev.Kind == trace.KindRetry {
			retryEvents++
			if ev.Dur <= 0 {
				t.Errorf("retry event has no backoff charged: %+v", ev)
			}
		}
	}
	if int64(retryEvents) != rt.Totals().Retries {
		t.Errorf("retry events %d != retry counter %d", retryEvents, rt.Totals().Retries)
	}
	if err := rt.Destroy(a); err != nil {
		t.Fatal(err)
	}
}

// A 100% transient rate exhausts the budget and must surface as a typed
// terminal RetryExhaustedError through Parallel's error wrapping.
func TestRetryExhaustionIsTerminal(t *testing.T) {
	tr := trace.New(0)
	rt, err := NewRuntime(Config{
		Procs: 1, Mode: Execute, Tracer: tr,
		Faults: &faults.Plan{Seed: 3, TransientRate: 1.0, MaxRetries: 3},
	})
	if err != nil {
		t.Fatal(err)
	}
	a, err := rt.Create("A", 2, 2, 2, 2, tile.RoundRobin)
	if err != nil {
		t.Fatal(err)
	}
	err = rt.Parallel(func(p *Proc) {
		p.Put(a, 0, 2, 0, 2, make([]float64, 4), 2)
	})
	var re *faults.RetryExhaustedError
	if !errors.As(err, &re) {
		t.Fatalf("got %v, want *RetryExhaustedError", err)
	}
	if re.Attempts != 4 || re.Op != "Put" || re.Array != "A" {
		t.Errorf("exhaustion details wrong: %+v", re)
	}
	if !faults.Terminal(err) || faults.Restartable(err) {
		t.Errorf("classification wrong: terminal=%v restartable=%v", faults.Terminal(err), faults.Restartable(err))
	}
	var faultEvents int
	for _, ev := range tr.Events() {
		if ev.Kind == trace.KindFault {
			faultEvents++
		}
	}
	if faultEvents != 1 {
		t.Errorf("fault events = %d, want 1", faultEvents)
	}
}

// An injected crash must poison the barrier (siblings unwind), surface
// as a restartable CrashError, and not re-fire in the next registered
// run against the same plan.
func TestCrashPointPoisonsBarrierOnce(t *testing.T) {
	plan := &faults.Plan{Crash: &faults.CrashPoint{Run: 1, Proc: 1, Seq: 0}}
	body := func(a *Array) func(p *Proc) {
		return func(p *Proc) {
			buf := make([]float64, 4)
			p.Put(a, p.ID()*2, p.ID()*2+2, 0, 2, buf, 2)
			p.Barrier()
			p.Get(a, p.ID()*2, p.ID()*2+2, 0, 2, buf, 2)
		}
	}

	rt1, err := NewRuntime(Config{Procs: 2, Mode: Execute, Faults: plan})
	if err != nil {
		t.Fatal(err)
	}
	a1, err := rt1.Create("A", 4, 4, 2, 2, tile.RoundRobin)
	if err != nil {
		t.Fatal(err)
	}
	err = rt1.Parallel(body(a1))
	var ce *faults.CrashError
	if !errors.As(err, &ce) {
		t.Fatalf("got %v, want *CrashError", err)
	}
	if ce.Proc != 1 || ce.Seq != 0 {
		t.Errorf("crash details wrong: %+v", ce)
	}
	if !faults.Restartable(err) {
		t.Error("crash should be restartable")
	}

	// Restart: a fresh runtime registers run 2; the same plan injects
	// nothing and the region completes.
	rt2, err := NewRuntime(Config{Procs: 2, Mode: Execute, Faults: plan})
	if err != nil {
		t.Fatal(err)
	}
	a2, err := rt2.Create("A", 4, 4, 2, 2, tile.RoundRobin)
	if err != nil {
		t.Fatal(err)
	}
	if err := rt2.Parallel(body(a2)); err != nil {
		t.Fatalf("restarted run should be fault-free: %v", err)
	}
}

// A straggler's clock must run slower than its peers by the configured
// factor, showing up as idle time at the region boundary.
func TestStragglerSlowsOneProcess(t *testing.T) {
	run, err := cluster.SystemA().Configure(2, 8)
	if err != nil {
		t.Fatal(err)
	}
	newRT := func(plan *faults.Plan) *Runtime {
		rt, err := NewRuntime(Config{Procs: 2, Mode: Cost, Run: &run, Faults: plan})
		if err != nil {
			t.Fatal(err)
		}
		return rt
	}
	work := func(rt *Runtime) float64 {
		a, err := rt.Create("A", 64, 64, 8, 8, tile.RoundRobin)
		if err != nil {
			t.Fatal(err)
		}
		if err := rt.Parallel(func(p *Proc) {
			p.Get(a, 0, 64, 0, 64, nil, 64)
			p.Compute(1 << 20)
		}); err != nil {
			t.Fatal(err)
		}
		return rt.Elapsed()
	}
	base := work(newRT(nil))
	slowed := work(newRT(&faults.Plan{Slow: &faults.Straggler{Proc: 1, Factor: 3}}))
	if slowed <= base {
		t.Errorf("straggler run %.6g s not slower than baseline %.6g s", slowed, base)
	}
}

// Late OOM pressure: allocations succeed before the trigger point and
// fail with ErrGlobalOOM once enough operations have run.
func TestLateOOMPressure(t *testing.T) {
	rt, err := NewRuntime(Config{
		Procs: 1, Mode: Execute,
		Faults: &faults.Plan{OOM: &faults.LateOOM{AfterOps: 3, CapBytes: 64}},
	})
	if err != nil {
		t.Fatal(err)
	}
	a, err := rt.Create("A", 8, 8, 4, 4, tile.RoundRobin)
	if err != nil {
		t.Fatalf("pre-trigger create should succeed: %v", err)
	}
	if err := rt.Parallel(func(p *Proc) {
		buf := make([]float64, 16)
		p.Put(a, 0, 4, 0, 4, buf, 4)
		p.Get(a, 0, 4, 0, 4, buf, 4)
		p.Get(a, 4, 8, 4, 8, buf, 4)
		p.Get(a, 0, 4, 4, 8, buf, 4)
	}); err != nil {
		t.Fatal(err)
	}
	_, err = rt.Create("B", 8, 8, 4, 4, tile.RoundRobin)
	if !errors.Is(err, ErrGlobalOOM) {
		t.Fatalf("post-trigger create returned %v, want ErrGlobalOOM", err)
	}
}

// ChargeCheckpoint must account disk traffic and advance every clock.
func TestChargeCheckpoint(t *testing.T) {
	run, err := cluster.SystemA().Configure(2, 8)
	if err != nil {
		t.Fatal(err)
	}
	rt, err := NewRuntime(Config{Procs: 2, Mode: Cost, Run: &run})
	if err != nil {
		t.Fatal(err)
	}
	rt.ChargeCheckpoint(1000, false)
	rt.ChargeCheckpoint(1000, true)
	if got := rt.DiskVolume(); got != 2000 {
		t.Errorf("DiskVolume = %d, want 2000", got)
	}
	for i, c := range rt.clocks {
		if c <= 0 {
			t.Errorf("clock %d not advanced by checkpoint I/O", i)
		}
	}
	rt.ChargeCheckpoint(0, false)
	if got := rt.DiskVolume(); got != 2000 {
		t.Errorf("zero-word checkpoint charged: DiskVolume = %d", got)
	}
}

// Proc.Fatal must convert an explicit error into a region failure that
// preserves the error chain.
func TestProcFatal(t *testing.T) {
	rt := newExec(t, 2)
	sentinel := errors.New("deliberate")
	err := rt.Parallel(func(p *Proc) {
		if p.ID() == 0 {
			p.Fatal(sentinel)
		}
		p.Fatal(nil) // no-op
		p.Barrier()
	})
	if !errors.Is(err, sentinel) {
		t.Fatalf("Fatal error not propagated: %v", err)
	}
}

// Snapshot/Restore must round-trip tensor contents and satisfy Strict
// reads of restored tiles.
func TestSnapshotRestoreTiles(t *testing.T) {
	mk := func() (*Runtime, *TiledArray) {
		rt, err := NewRuntime(Config{Procs: 2, Mode: Execute, Strict: true})
		if err != nil {
			t.Fatal(err)
		}
		g := tile.NewGrid(6, 2)
		a, err := rt.CreateTiled("T", []tile.Grid{g, g}, [][2]int{{0, 1}}, tile.RoundRobin)
		if err != nil {
			t.Fatal(err)
		}
		return rt, a
	}
	rt1, a1 := mk()
	if err := rt1.Parallel(func(p *Proc) {
		if p.ID() != 0 {
			return
		}
		buf := make([]float64, 4)
		a1.ForEachTile(func(coords []int) {
			for i := range buf {
				buf[i] = float64(coords[0]*100 + coords[1]*10 + i)
			}
			p.PutT(a1, buf, coords[0], coords[1])
		})
	}); err != nil {
		t.Fatal(err)
	}
	snap := a1.SnapshotTiles()
	if len(snap) == 0 {
		t.Fatal("empty snapshot of a written tensor")
	}

	_, a2 := mk()
	a2.RestoreTiles(snap)
	if got := a2.SnapshotTiles(); len(got) != len(snap) {
		t.Fatalf("restored snapshot length %d != %d", len(got), len(snap))
	} else {
		for i := range got {
			if got[i] != snap[i] {
				t.Fatalf("restored element %d = %v, want %v", i, got[i], snap[i])
			}
		}
	}
}
