// Package fourindex is a from-scratch reproduction of "Optimizing the
// Four-Index Integral Transform Using Data Movement Lower Bounds
// Analysis" (Rajbhandari, Rastello, Kowalski, Krishnamoorthy,
// Sadayappan — PPoPP 2017).
//
// It provides:
//
//   - Transform: the four-index integral transform C = B B B B A over a
//     simulated Global-Arrays cluster, as any of the paper's schedules —
//     the unfused baseline, the op12/34 fusion, the minimal-memory
//     direct method, the fully fused Listing 8/10 algorithms, and the
//     Section 7.4 fuse/unfuse hybrid. Schedules run with real arithmetic
//     (ModeExecute, for verification at small extents) or as exact
//     data-movement/cost simulations (ModeCost, at molecule scale).
//
//   - The lower-bounds toolkit of Sections 4-6: matrix-multiplication
//     I/O lower bounds, the Fusion Lemma, fusion-configuration ranking
//     (Theorem 5.2), the full-reuse condition S >= |C| (Theorem 6.2),
//     memory and communication formulas, and the Advise planner.
//
//   - The red-blue pebble game (Appendix A) on computational DAGs for
//     empirically validating the bounds.
//
//   - The paper's complete evaluation (Figure 2) as runnable
//     simulations over machine models of its three clusters.
//
// The deeper implementation lives under internal/; this package is the
// stable façade the examples and benchmarks are written against.
package fourindex

import (
	"io"

	"fourindex/internal/chem"
	"fourindex/internal/cluster"
	"fourindex/internal/experiments"
	"fourindex/internal/faults"
	ifx "fourindex/internal/fourindex"
	"fourindex/internal/ga"
	"fourindex/internal/lb"
	"fourindex/internal/lb/chain"
	"fourindex/internal/perf"
	"fourindex/internal/scf"
	"fourindex/internal/sym"
	"fourindex/internal/trace"
)

// Scheme selects a transform schedule.
type Scheme = ifx.Scheme

// The implemented schedules (see the paper sections in parentheses).
const (
	// Unfused is the four-separate-contractions baseline (Listing 1).
	Unfused = ifx.Unfused
	// Fused1234Pair fuses op1+op2 and op3+op4 at full size (Listing 9).
	Fused1234Pair = ifx.Fused1234Pair
	// Recompute is the minimal-memory direct method (Listing 3).
	Recompute = ifx.Recompute
	// FullyFused fuses loop l across all contractions (Listing 8).
	FullyFused = ifx.FullyFused
	// FullyFusedInner adds the inner op12/34 fusion (Listing 10) —
	// the paper's contributed implementation.
	FullyFusedInner = ifx.FullyFusedInner
	// Hybrid picks Unfused or FullyFusedInner by memory (Section 7.4).
	Hybrid = ifx.Hybrid
	// NWChemFused models the production NWChem fused baseline.
	NWChemFused = ifx.NWChemFused
	// Fused123 is the op123/4 configuration — implemented to make
	// Theorem 5.2's "three-way fusion does not help" measurable.
	Fused123 = ifx.Fused123
)

// SchemeByName resolves a scheme from its name ("unfused", "hybrid", ...).
func SchemeByName(name string) (Scheme, error) { return ifx.SchemeByName(name) }

// Mode selects real execution or cost-only simulation.
type Mode = ga.Mode

// Execution modes.
const (
	// ModeExecute runs real arithmetic and returns the packed C tensor.
	ModeExecute = ga.Execute
	// ModeCost runs the same schedules, accounting data movement,
	// memory and simulated time only.
	ModeCost = ga.Cost
)

// Options configures a transform run; Result reports it.
type (
	Options = ifx.Options
	Result  = ifx.Result
)

// PackedC is the permutation-symmetric packed output tensor.
type PackedC = sym.PackedC

// Transform runs the four-index integral transform with the given
// schedule.
func Transform(scheme Scheme, opt Options) (*Result, error) { return ifx.Run(scheme, opt) }

// Spec describes a synthetic electronic-structure problem: orbital
// count, spatial-symmetry order, and generator seed.
type Spec = chem.Spec

// NewSpec validates and builds a Spec.
func NewSpec(orbitals, spatialSymmetry int, seed uint64) (Spec, error) {
	return chem.NewSpec(orbitals, spatialSymmetry, seed)
}

// Molecule is a benchmark system from the paper's evaluation.
type Molecule = chem.Molecule

// Molecules returns the paper's five benchmark molecules.
func Molecules() []Molecule { return chem.Catalog }

// MoleculeByName looks up a benchmark molecule.
func MoleculeByName(name string) (Molecule, error) { return chem.ByName(name) }

// Machine and Run describe simulated clusters.
type (
	Machine = cluster.Machine
	Run     = cluster.Run
)

// The paper's three evaluation platforms (Section 8).
var (
	SystemA = cluster.SystemA
	SystemB = cluster.SystemB
	SystemC = cluster.SystemC
)

// MachineByName resolves "A"/"B"/"C" (or SystemA/B/C).
func MachineByName(name string) (Machine, error) { return cluster.ByName(name) }

// Advice is the Section 7.4 fuse/unfuse decision.
type Advice = lb.Advice

// Advise picks between the unfused and fused implementations for extent
// n with spatial symmetry s under the given aggregate memory.
func Advise(n, s int, globalMemBytes int64) Advice { return lb.Advise(n, s, globalMemBytes) }

// FusionConfig is a grouping of the four contractions (op12/34, ...).
type FusionConfig = lb.FusionConfig

// RankedConfig pairs a fusion configuration with its I/O lower bound.
type RankedConfig = lb.RankedConfig

// RankFusionConfigs orders all eight fusion configurations by their
// Section 5.3 I/O lower bounds for extent n with spatial symmetry s,
// realising the Theorem 5.2 total order.
func RankFusionConfigs(n, s int) []RankedConfig {
	return lb.RankConfigs(sym.ExactSizes(n, s))
}

// FusionLemma is Lemma 4.2: a fused producer-consumer pair moves at
// least lb1 + lb2 - 2|intermediate| elements.
func FusionLemma(lb1, lb2 float64, intermediate int64) float64 {
	return lb.FusionLemma(lb1, lb2, intermediate)
}

// DongarraMatmulLB is the matrix-multiplication I/O lower bound used
// throughout the paper: 1.73 ni nj nk / sqrt(S).
func DongarraMatmulLB(ni, nj, nk, s int64) float64 { return lb.DongarraMatmulLB(ni, nj, nk, s) }

// FullReusePossible is Theorem 6.2: I/O = |A|+|C| is achievable iff the
// fast memory holds the output tensor.
func FullReusePossible(s, sizeC int64) bool { return lb.FullReusePossible(s, sizeC) }

// TensorSizes holds the element counts of Table 1.
type TensorSizes = sym.Sizes

// Sizes returns the exact packed tensor sizes for extent n with spatial
// symmetry s (Table 1).
func Sizes(n, s int) TensorSizes { return sym.ExactSizes(n, s) }

// UnfusedMemoryWords returns the peak live elements of the unfused
// schedule, ~3n^4/4 (Section 2.2).
func UnfusedMemoryWords(n, s int) int64 { return lb.MemoryUnfused(n, s) }

// Figure2Point is one bar group of the paper's Figure 2; Figure2Outcome
// its simulated result.
type (
	Figure2Point   = experiments.Point
	Figure2Outcome = experiments.Outcome
)

// Figure2 returns the paper's full evaluation matrix.
func Figure2() []Figure2Point { return experiments.Figure2() }

// RunFigure2Point simulates one evaluation point.
func RunFigure2Point(pt Figure2Point) (Figure2Outcome, error) { return experiments.RunPoint(pt) }

// RunFigure2 simulates one sub-figure ("2a".."2e") or, with "", all of
// Figure 2.
func RunFigure2(fig string) ([]Figure2Outcome, error) { return experiments.RunFigure(fig) }

// Tracer records a transform run as phase spans and per-operation
// events (see internal/trace). Attach one via Options.Trace, then
// export with its WriteChromeTrace (Chrome/Perfetto trace_event JSON)
// or join phases against the paper's lower bounds with Audit. A nil
// *Tracer disables tracing at zero cost.
type Tracer = trace.Tracer

// NewTracer builds an enabled execution tracer whose event ring holds
// capacity events (<= 0 selects a default of 32768).
func NewTracer(capacity int) *Tracer { return trace.New(capacity) }

// TraceAuditRow is one line of the bound-vs-actual audit: a schedule
// phase joined against its lower-bound prediction with the attained
// fraction.
type TraceAuditRow = trace.AuditRow

// WriteTraceAuditTable renders audit rows as an aligned text table.
func WriteTraceAuditTable(w io.Writer, rows []TraceAuditRow) error {
	return trace.WriteAuditTable(w, rows)
}

// RunFigure2PointTraced simulates one evaluation point with an
// execution tracer attached to the hybrid run.
func RunFigure2PointTraced(pt Figure2Point, tr *Tracer) (Figure2Outcome, error) {
	return experiments.RunPointTraced(pt, tr)
}

// ReferencePacked computes C with the sequential packed algorithm —
// the ground truth for verification at small extents.
func ReferencePacked(spec Spec) *PackedC { return ifx.ReferencePacked(spec) }

// TunePoint and TuneSpace parametrise the brute-force configuration
// sweep; Tune runs it (cost mode, machine model required) and returns
// points sorted fastest-first.
type (
	TunePoint = ifx.TunePoint
	TuneSpace = ifx.TuneSpace
)

// MP2Energy evaluates the MP2 correlation energy from a transformed
// integral tensor — the transform's canonical consumer.
func MP2Energy(c *PackedC, orbitalEnergies []float64, nOcc int) (float64, error) {
	return chem.MP2Energy(c, orbitalEnergies, nOcc)
}

// SCFOptions tunes the Hartree-Fock solver; SCFResult is its converged
// state, with coefficients in the transform's B[mo, ao] layout.
type (
	SCFOptions = scf.Options
	SCFResult  = scf.Result
)

// RHF runs the restricted Hartree-Fock solver on the spec's synthetic
// integrals — the upstream producer of the transformation matrix B.
func RHF(spec Spec, nOcc int, opt SCFOptions) (SCFResult, error) {
	return scf.RHF(spec, nOcc, opt)
}

// Tune sweeps schedule configurations in simulation — the exhaustive
// search the paper's lower-bound analysis replaces.
func Tune(opt Options, space TuneSpace) ([]TunePoint, error) { return ifx.Tune(opt, space) }

// BestTunePoint returns the fastest feasible point of a sorted sweep.
func BestTunePoint(points []TunePoint) (TunePoint, bool) { return ifx.Best(points) }

// FaultPlan is a seeded, deterministic fault-injection plan for the GA
// runtime: transient Get/Put/Acc failures at a configured rate, an
// optional one-shot process crash, a straggler and late out-of-memory
// pressure. The zero plan injects nothing.
type FaultPlan = faults.Plan

// FaultInjection bundles a FaultPlan with the checkpoint store and the
// restart budget a transform run uses to recover from injected crashes.
// Attach one via Options.Faults.
type FaultInjection = faults.Injection

// Checkpoint is the store schedules record completed l-slabs and stages
// in, and resume from after a crash.
type Checkpoint = faults.Checkpoint

// NewMemCheckpoint returns an in-memory Checkpoint store.
func NewMemCheckpoint() Checkpoint { return faults.NewMemCheckpoint() }

// RandomFaultPlan derives a reproducible fault plan from a seed:
// transient faults at the given rate, plus (on half of all seeds) a
// crash point somewhere in the first run.
func RandomFaultPlan(seed uint64, rate float64, procs int) *FaultPlan {
	return faults.RandomPlan(seed, rate, procs)
}

// FaultInjected reports whether err originates from an injected fault
// (as opposed to a genuine schedule error).
func FaultInjected(err error) bool { return faults.Injected(err) }

// FaultSummary aggregates a traced run's fault events: injected
// crash/exhaustion faults, absorbed transient retries, checkpoint
// restarts and hybrid degradations.
type FaultSummary = trace.FaultSummary

// TraceFaultSummary extracts the fault summary from a run's tracer.
func TraceFaultSummary(tr *Tracer) FaultSummary { return tr.FaultSummary() }

// WriteFaultSummary renders a fault summary as text.
func WriteFaultSummary(w io.Writer, s FaultSummary) error { return trace.WriteFaultSummary(w, s) }

// Benchmark harness (internal/perf): a fixed, reproducible matrix of
// {schedule} x {execute sizes, cost molecules} x {GOMAXPROCS}, with
// deterministic accounting always and wall-clock measurement on demand,
// plus the regression gate CI runs against the checked-in baseline.
type (
	BenchConfig       = perf.Config
	BenchExecutePoint = perf.ExecutePoint
	BenchCostPoint    = perf.CostPoint
	BenchPoint        = perf.Point
	BenchMeasured     = perf.Measured
	BenchReport       = perf.Report
	BenchReadPath     = perf.ReadPathResult
)

// DefaultBenchConfig is the full matrix behind BENCH_fouridx.json;
// SmokeBenchConfig the CI-sized strict subset of it.
func DefaultBenchConfig() BenchConfig { return perf.DefaultConfig() }

// SmokeBenchConfig returns the smoke matrix (see DefaultBenchConfig).
func SmokeBenchConfig() BenchConfig { return perf.SmokeConfig() }

// RunBench executes a benchmark matrix.
func RunBench(cfg BenchConfig) (*BenchReport, error) { return perf.Run(cfg) }

// DecodeBenchReport reads a report written by BenchReport.Encode.
func DecodeBenchReport(r io.Reader) (*BenchReport, error) { return perf.Decode(r) }

// BenchGate compares a report against a baseline: deterministic metrics
// within tolerance, wall times within tolerance after median-ratio
// machine normalisation. Returns the violations found (empty = pass).
func BenchGate(cur, base *BenchReport, tolerance float64) ([]string, error) {
	return perf.Gate(cur, base, tolerance)
}

// BenchReadPathRun measures the frozen (lock-free) vs mutable (RWMutex)
// GetT read paths on one shared tile.
func BenchReadPathRun(procs, readsPerProc, dim int) (BenchReadPath, error) {
	return perf.BenchReadPath(procs, readsPerProc, dim)
}

// Strassen crossover calibration (internal/perf): the blocked classical
// GEMM kernel timed against one level of Strassen-Winograd recursion
// over a size ladder, picking the machine's crossover threshold. The
// full benchmark records the sweep in its artifact; `fouridx bench
// -calibrate` (make gemm-calibrate) runs it standalone.
type (
	StrassenCalibration = perf.StrassenCalibration
	StrassenPoint       = perf.StrassenPoint
)

// CalibrateStrassenGemm runs the crossover sweep over the given size
// ladder, best-of-trials per rung.
func CalibrateStrassenGemm(sizes []int, trials int) StrassenCalibration {
	return perf.CalibrateStrassen(sizes, trials)
}

// DefaultStrassenLadder is the calibration sweep's default size ladder.
func DefaultStrassenLadder() []int { return perf.DefaultStrassenLadder() }

// Capacity-vs-bound frontier (internal/lb + internal/fourindex): for
// every fast-memory capacity S there is a data-movement lower bound,
// and the paper's closed-form thresholds are the knees where each
// schedule's curve flattens onto its memory-independent floor. The
// frontier engine sweeps S over a deterministic grid, the artifact
// (FRONTIER_fouridx.json) pins the curves byte-for-byte, and the
// frontier tuner shortlists schedules by their bound before simulating.
type (
	// FrontierProblem names one (n, s) problem a frontier covers.
	FrontierProblem = ifx.FrontierProblem
	// FrontierPoint is one capacity sample of a schedule's curve.
	FrontierPoint = ifx.FrontierPoint
	// ScheduleFrontier is one schedule's capacity-vs-bound curve.
	ScheduleFrontier = ifx.ScheduleFrontier
	// ProblemFrontier is one problem's full frontier across schedules.
	ProblemFrontier = ifx.ProblemFrontier
	// FrontierReport is the schema-versioned FRONTIER_fouridx.json shape.
	FrontierReport = ifx.FrontierReport
	// FrontierCandidate is one schedule's frontier analysis in a tune.
	FrontierCandidate = ifx.FrontierCandidate
	// FrontierTuneResult is the frontier-driven tuner's outcome.
	FrontierTuneResult = ifx.FrontierTune
	// KneeCapacities collects the paper's closed-form threshold
	// capacities for one problem.
	KneeCapacities = lb.Thresholds
)

// DefaultFrontierProblems returns the problems behind the checked-in
// FRONTIER_fouridx.json artifact.
func DefaultFrontierProblems() []FrontierProblem { return ifx.DefaultFrontierProblems() }

// RunFrontier sweeps every schedule's memory model and lower bound over
// a deterministic capacity grid for each problem (nil = the defaults)
// and returns the frontier report; equal inputs encode byte-identically.
func RunFrontier(problems []FrontierProblem) *FrontierReport { return ifx.RunFrontier(problems) }

// DecodeFrontierReport reads a report written by FrontierReport.Encode.
func DecodeFrontierReport(r io.Reader) (*FrontierReport, error) { return ifx.DecodeFrontier(r) }

// KneesFor returns the closed-form knee capacities (S >= n^2+n+1,
// S >= 3n^2+n+1, S >= |C|, ...) for extent n with spatial symmetry s.
func KneesFor(n, s int) KneeCapacities { return lb.ThresholdsFor(n, s) }

// TuneFrontier is the frontier-driven autotuner: it evaluates each
// schedule's lower bound at the run's capacity, shortlists the schedules
// whose machine-aware time floor is within tolerance (<= 0 selects the
// default) of the best attainable, cost-simulates only the shortlist —
// rescuing any pruned schedule whose floor undercuts the incumbent's
// simulated time, so the pick is never worse than a full Tune sweep —
// and returns the analysis alongside the winning configuration.
func TuneFrontier(opt Options, space TuneSpace, tolerance float64) (*FrontierTuneResult, error) {
	return ifx.TuneFrontier(opt, space, tolerance)
}

// FrontierGateResult is one cost point's frontier-tuner check against
// the benchmark baseline.
type FrontierGateResult = perf.TunerGateResult

// FrontierTunerGate checks the frontier tuner against the checked-in
// benchmark baseline: at every cost point the tuner's pick must simulate
// at least as fast as the fastest schedule the benchmark recorded there.
// Returns the per-point results and the violations found (empty = pass).
func FrontierTunerGate(base *BenchReport) ([]FrontierGateResult, []string, error) {
	return perf.TunerGate(base)
}

// FaultSweepRow is one row of the fault-injection sweep: the observed
// completion/recovery behaviour of a schedule at one transient rate.
type FaultSweepRow = experiments.FaultSweepRow

// RunFaultSweep sweeps fault rates over seeded plans in cost mode,
// measuring success rate, retries, restarts and checkpoint I/O overhead.
func RunFaultSweep(scheme Scheme, rates []float64, seedsPerRate int) ([]FaultSweepRow, error) {
	return experiments.RunFaultSweep(scheme, rates, seedsPerRate)
}

// Chain is a declarative contraction chain: named boundary tensors
// around a sequence of matmul-shaped contractions. The bound engine
// derives per-op lower bounds, fusion rankings, capacity thresholds and
// frontier curves for any Chain — the four-index transform is just the
// built-in instance.
type Chain = chain.Chain

// ChainTensor is one boundary tensor of a Chain.
type ChainTensor = chain.Tensor

// ChainContraction is one matmul-shaped contraction of a Chain.
type ChainContraction = chain.Contraction

// ChainConfig is a fusion configuration over a Chain's contractions.
type ChainConfig = chain.Config

// ChainThresholds are the derived regime-change capacities of a Chain.
type ChainThresholds = chain.Thresholds

// ChainReport is the engine's full analysis of one Chain.
type ChainReport = ifx.ChainReport

// FourIndexChain builds the paper's four-index transform as a Chain:
// the engine derives from it exactly the hand-proved Section 4-6
// numbers (bounds, thresholds, rankings, curves).
func FourIndexChain(n, s int) (*Chain, error) { return chain.FourIndex(n, s) }

// MP2Chain builds the two-contraction MP2-style half-transform
// AO -> half-transformed -> MO for occ occupied and virt virtual
// orbitals.
func MP2Chain(occ, virt int) (*Chain, error) { return chain.MP2(occ, virt) }

// RectChain builds the rectangular two-matmul chain E = (A B) C with
// A of shape n x k, matching the cdag.BuildRectChain pebble-game DAG.
func RectChain(n, k int) (*Chain, error) { return chain.Rect(n, k) }

// ChainByName builds a named built-in chain ("fourindex", "mp2",
// "rect") from its two extent arguments.
func ChainByName(name string, a, b int) (*Chain, error) { return chain.ByName(name, a, b) }

// AnalyzeChain runs the bound engine over a chain: validation,
// thresholds, fusion-configuration ranking, frontier curves, and — when
// capacityElements > 0 — per-configuration bounds and feasibility at
// that capacity. Errors are typed, never panics.
func AnalyzeChain(c *Chain, capacityElements int64, perDecade int) (*ChainReport, error) {
	return ifx.AnalyzeChain(c, capacityElements, perDecade)
}

// WriteChainReport renders a ChainReport as aligned text tables.
func WriteChainReport(w io.Writer, rep *ChainReport) error { return ifx.WriteChainReport(w, rep) }
