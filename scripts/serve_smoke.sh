#!/usr/bin/env bash
# serve_smoke.sh — end-to-end smoke of the fouridxd job server through
# its real binary and HTTP API:
#
#   1. a reference transform runs to completion (202 -> done),
#   2. an over-budget job is rejected up front (422),
#   3. a long transform is interrupted by SIGTERM mid-run: the server
#      drains (checkpoint + queue persisted, exit 0), a restarted
#      server resumes the job from its checkpoint, and the resumed
#      result's SHA-256 fingerprint must equal the uninterrupted
#      reference's — the drain/resume bitwise-identity proof.
#
# Mirrors `make serve-smoke`; see README "Serving".
set -euo pipefail
cd "$(dirname "$0")/.."

GO=${GO:-go}
ADDR=127.0.0.1:18765
BASE="http://$ADDR"
TMP=$(mktemp -d)
SRV_PID=""
trap '[ -n "$SRV_PID" ] && kill "$SRV_PID" 2>/dev/null; rm -rf "$TMP"' EXIT

fail() { echo "serve-smoke: FAIL: $*" >&2; exit 1; }

$GO build -o "$TMP/fouridxd" ./cmd/fouridxd

start_server() {
  "$TMP/fouridxd" -addr "$ADDR" -mem 64MB -state "$TMP/state" -procs 2 -workers 2 &
  SRV_PID=$!
  for _ in $(seq 1 100); do
    if curl -fsS "$BASE/healthz" >/dev/null 2>&1; then return 0; fi
    sleep 0.2
  done
  fail "server did not come up on $ADDR"
}

# submit BODY -> echoes HTTP status; response body lands in $TMP/resp.json
submit() {
  curl -sS -o "$TMP/resp.json" -w '%{http_code}' -X POST "$BASE/jobs" -d "$1"
}

field() { # FILE KEY -> first string value of KEY
  sed -n 's/.*"'"$2"'": *"\([^"]*\)".*/\1/p' "$1" | head -1
}

wait_done() { # ID -> echoes terminal state; status body in $TMP/status.json
  local id=$1 state
  for _ in $(seq 1 300); do
    curl -fsS "$BASE/jobs/$id" -o "$TMP/status.json"
    state=$(field "$TMP/status.json" state)
    case "$state" in done|failed|canceled) echo "$state"; return 0 ;; esac
    sleep 0.2
  done
  echo timeout
}

# The drain target and its reference share this spec: 48 l-slabs give
# the SIGTERM a wide window and the resume plenty of skipped work.
SPEC='{"tenant":"smoke","n":48,"scheme":"fullyfused","mode":"execute","tileN":8,"tileL":1}'

start_server

# --- Job 1: uninterrupted reference ---------------------------------
code=$(submit "$SPEC")
[ "$code" = 202 ] || fail "reference submit: HTTP $code, want 202"
ref_id=$(field "$TMP/resp.json" id)
state=$(wait_done "$ref_id")
[ "$state" = done ] || fail "reference job ended $state, want done"
ref_sum=$(field "$TMP/status.json" checksumSha256)
[ -n "$ref_sum" ] || fail "reference job has no checksum"
echo "serve-smoke: reference $ref_id done (checksum ${ref_sum:0:12}...)"

# --- Job 2: over budget, rejected at admission ----------------------
code=$(submit '{"tenant":"smoke","n":128,"scheme":"unfused","mode":"cost"}')
[ "$code" = 422 ] || fail "over-budget submit: HTTP $code, want 422"
echo "serve-smoke: over-budget job rejected with 422"

# --- Job 3: drained mid-run, resumed after restart ------------------
code=$(submit "$SPEC")
[ "$code" = 202 ] || fail "drain-target submit: HTTP $code, want 202"
drain_id=$(field "$TMP/resp.json" id)
# Stream a few progress events so the SIGTERM provably lands mid-run.
# head closing the pipe makes curl exit nonzero (SIGPIPE); that is the
# intended shutdown of the stream, not a failure.
curl -sN "$BASE/jobs/$drain_id/events" | head -n 3 >/dev/null || true
kill -TERM "$SRV_PID"
wait "$SRV_PID" || fail "server exited nonzero on SIGTERM drain"
SRV_PID=""
grep -q '"state": "interrupted"' "$TMP/state/jobs.json" \
  || fail "drained job not persisted as interrupted"
[ -e "$TMP/state/ckpt/$drain_id/fullyfused.ckpt" ] \
  || fail "no slab checkpoint on disk after drain"
echo "serve-smoke: drained $drain_id mid-run (checkpoint + queue persisted)"

start_server
state=$(wait_done "$drain_id")
[ "$state" = done ] || fail "resumed job ended $state, want done"
grep -q '"resumed": true' "$TMP/status.json" \
  || fail "restarted job did not resume from its checkpoint"
resumed_sum=$(field "$TMP/status.json" checksumSha256)
[ "$resumed_sum" = "$ref_sum" ] \
  || fail "resume broke bitwise identity: $resumed_sum != $ref_sum"
echo "serve-smoke: $drain_id resumed and matched the reference bitwise"

curl -fsS "$BASE/metrics" | grep -q '^fouridxd_mem_budget_bytes ' \
  || fail "metrics endpoint missing admission gauges"

kill -TERM "$SRV_PID"
wait "$SRV_PID" || fail "second server exited nonzero on SIGTERM"
SRV_PID=""
echo "serve-smoke: PASS"
