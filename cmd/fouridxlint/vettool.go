package main

import (
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"strings"

	"fourindex/internal/analysis"
)

// modulePath is the import-path prefix of packages the suite applies to.
const modulePath = "fourindex"

// vetConfig is the subset of cmd/go's vet unit-check configuration file
// (the JSON handed to -vettool binaries) that fouridxlint needs. The
// build system has already resolved file lists and compiled export data
// for every dependency, so this mode typechecks one package against
// export data instead of re-loading the world — the same protocol
// x/tools' unitchecker implements.
type vetConfig struct {
	ImportPath                string
	Dir                       string
	GoFiles                   []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

// runVetUnit analyzes the single package described by cfgPath and
// reports findings in the format go vet expects.
func runVetUnit(suite []*analysis.Analyzer, cfgPath string) int {
	data, err := os.ReadFile(cfgPath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "fouridxlint: reading vet config: %v\n", err)
		return 3
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		fmt.Fprintf(os.Stderr, "fouridxlint: parsing vet config %s: %v\n", cfgPath, err)
		return 3
	}

	// go vet visits every package in the build graph, standard library
	// included. The suite's invariants are specific to this module, so
	// anything else is vacuously clean.
	if cfg.ImportPath != modulePath && !strings.HasPrefix(cfg.ImportPath, modulePath+"/") {
		return writeVetx(cfg)
	}

	fset := token.NewFileSet()
	var files []*ast.File
	for _, name := range cfg.GoFiles {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			if cfg.SucceedOnTypecheckFailure {
				return writeVetx(cfg)
			}
			fmt.Fprintf(os.Stderr, "fouridxlint: %v\n", err)
			return 3
		}
		files = append(files, f)
	}

	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
	conf := types.Config{
		Importer: &vetImporter{
			gc: importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
				file, ok := cfg.PackageFile[path]
				if !ok {
					return nil, fmt.Errorf("no export data for %q", path)
				}
				return os.Open(file)
			}),
			importMap: cfg.ImportMap,
		},
		Sizes: types.SizesFor("gc", "amd64"),
	}
	tpkg, err := conf.Check(cfg.ImportPath, fset, files, info)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return writeVetx(cfg)
		}
		fmt.Fprintf(os.Stderr, "fouridxlint: typechecking %s: %v\n", cfg.ImportPath, err)
		return 3
	}

	pkg := &analysis.Package{
		ImportPath: cfg.ImportPath,
		Dir:        cfg.Dir,
		Fset:       fset,
		Files:      files,
		Pkg:        tpkg,
		TypesInfo:  info,
	}
	diags, err := analysis.RunPackage(suite, pkg)
	if err != nil {
		fmt.Fprintf(os.Stderr, "fouridxlint: %v\n", err)
		return 3
	}
	if code := writeVetx(cfg); code != 0 {
		return code
	}
	if len(diags) > 0 {
		for _, d := range diags {
			fmt.Fprintf(os.Stderr, "%s\n", d)
		}
		return 2
	}
	return 0
}

// writeVetx writes the (empty) facts file cmd/go requires for caching.
func writeVetx(cfg vetConfig) int {
	if cfg.VetxOutput == "" {
		return 0
	}
	if err := os.WriteFile(cfg.VetxOutput, []byte{}, 0o666); err != nil {
		fmt.Fprintf(os.Stderr, "fouridxlint: writing %s: %v\n", cfg.VetxOutput, err)
		return 3
	}
	return 0
}

// vetImporter applies the build system's import map before delegating to
// the export-data importer.
type vetImporter struct {
	gc        types.Importer
	importMap map[string]string
}

func (v *vetImporter) Import(path string) (*types.Package, error) {
	if mapped, ok := v.importMap[path]; ok {
		path = mapped
	}
	return v.gc.Import(path)
}
