// Command fouridxlint is the multichecker for the repository's custom
// static analyzers. It enforces the code-level disciplines the paper's
// data-movement accounting depends on — ga resource pairing,
// flow-sensitive nonblocking-handle completion discipline, static race
// checking of Parallel regions, determinism of results and traces,
// freeze-protocol ordering, packed triangular indexing through
// internal/sym, metrics and tracer accessor hygiene, runtime error
// propagation, context hygiene in the serving layer (context-first
// parameters, handled ctx.Err() results), and doc-comment coverage of
// the internal packages (see internal/analysis for the full rationale
// of each check).
//
// Findings can be suppressed per line with a justified directive:
//
//	//lint:ignore <analyzer> <reason>
//
// on the flagged line or the line above it. A directive without an
// analyzer name or a reason suppresses nothing and is itself reported.
//
// Usage:
//
//	go run ./cmd/fouridxlint ./...         # lint the whole module
//	go run ./cmd/fouridxlint -list         # describe the analyzers
//	go run ./cmd/fouridxlint -tests ./...  # include _test.go files
//	go run ./cmd/fouridxlint -only symindex ./internal/fourindex
//	go vet -vettool=$(which fouridxlint) ./...   # as a vet tool
//
// Exit status is 0 when no findings are reported, 1 on findings, and 2
// on usage or load errors. Test files are analyzed only with -tests
// (patterns follow `go list` GoFiles semantics otherwise).
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"fourindex/internal/analysis"
	"fourindex/internal/analysis/ctxdiscipline"
	"fourindex/internal/analysis/determinism"
	"fourindex/internal/analysis/docstring"
	"fourindex/internal/analysis/errflow"
	"fourindex/internal/analysis/freezediscipline"
	"fourindex/internal/analysis/gadiscipline"
	"fourindex/internal/analysis/metricsdiscipline"
	"fourindex/internal/analysis/nbdiscipline"
	"fourindex/internal/analysis/paralleldiscipline"
	"fourindex/internal/analysis/retrydiscipline"
	"fourindex/internal/analysis/symindex"
)

// analyzers is the full suite, in reporting-name order.
var analyzers = []*analysis.Analyzer{
	ctxdiscipline.Analyzer,
	determinism.Analyzer,
	docstring.Analyzer,
	errflow.Analyzer,
	freezediscipline.Analyzer,
	gadiscipline.Analyzer,
	metricsdiscipline.Analyzer,
	nbdiscipline.Analyzer,
	paralleldiscipline.Analyzer,
	retrydiscipline.Analyzer,
	symindex.Analyzer,
}

func main() {
	os.Exit(run(os.Args[1:]))
}

func run(args []string) int {
	fs := flag.NewFlagSet("fouridxlint", flag.ContinueOnError)
	list := fs.Bool("list", false, "list the analyzers and exit")
	only := fs.String("only", "", "comma-separated analyzer names to run (default: all)")
	tests := fs.Bool("tests", false, "also analyze _test.go files (each file exactly once)")
	vetVersion := fs.String("V", "", "vet tool protocol: print version (-V=full)")
	fs.Usage = func() {
		fmt.Fprintf(fs.Output(), "usage: fouridxlint [-list] [-only names] [packages]\n")
		fs.PrintDefaults()
	}
	if len(args) == 1 && args[0] == "-flags" {
		// cmd/go asks vet tools which extra flags they accept.
		fmt.Println("[]")
		return 0
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *vetVersion != "" {
		// cmd/go probes vet tools with -V=full and caches on the output.
		fmt.Printf("fouridxlint version devel buildID=fouridxlint\n")
		return 0
	}
	if *list {
		for _, a := range analyzers {
			fmt.Printf("%-18s %s\n", a.Name, a.Doc)
		}
		return 0
	}

	suite := analyzers
	if *only != "" {
		suite = nil
		for _, name := range strings.Split(*only, ",") {
			a := byName(strings.TrimSpace(name))
			if a == nil {
				fmt.Fprintf(os.Stderr, "fouridxlint: unknown analyzer %q (try -list)\n", name)
				return 2
			}
			suite = append(suite, a)
		}
	}

	patterns := fs.Args()
	if len(patterns) == 1 && strings.HasSuffix(patterns[0], ".cfg") {
		// Invoked by `go vet -vettool=` with a unit-check config.
		return runVetUnit(suite, patterns[0])
	}
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	runner := analysis.Run
	if *tests {
		runner = analysis.RunTests
	}
	diags, err := runner("", suite, patterns...)
	if err != nil {
		fmt.Fprintf(os.Stderr, "fouridxlint: %v\n", err)
		return 2
	}
	if analysis.Print(os.Stdout, diags) > 0 {
		return 1
	}
	return 0
}

// byName resolves an analyzer by its reporting name.
func byName(name string) *analysis.Analyzer {
	for _, a := range analyzers {
		if a.Name == name {
			return a
		}
	}
	return nil
}
