// Command figures regenerates the paper's evaluation artifacts:
//
//	figures -table1          Table 1 (tensor sizes) for a given n
//	figures -fig2 a          Figure 2a (and b..e, or "all")
//	figures -claims          the Section 1/8 capacity claims
//
// Figure 2 runs are full cost-mode simulations of every schedule over
// the simulated Global Arrays runtime with the paper's machine models;
// expect roughly one to thirty seconds per bar group.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"fourindex"
	"fourindex/internal/experiments"
	"fourindex/internal/lb"
	"fourindex/internal/sym"
)

func main() {
	var (
		table1   = flag.Bool("table1", false, "print Table 1 tensor sizes")
		n        = flag.Int("n", 698, "orbital count for -table1")
		s        = flag.Int("s", 8, "spatial symmetry order")
		fig2     = flag.String("fig2", "", "regenerate Figure 2: a|b|c|d|e|all")
		claims   = flag.Bool("claims", false, "verify the Section 1/8 capacity claims")
		scaling  = flag.Bool("scaling", false, "strong-scaling sweep (with -molecule/-system/-cores)")
		molecule = flag.String("molecule", "Uracil", "molecule for -scaling")
		system   = flag.String("system", "B", "cluster for -scaling")
		cores    = flag.String("cores", "56,112,224,448", "comma-separated core counts for -scaling")
		rpn      = flag.Int("ranks-per-node", 0, "ranks per node for -scaling")
		ample    = flag.Bool("ample-memory", false, "scaling with unconstrained memory (both sides unfused)")
		report   = flag.String("report", "", "write a full markdown reproduction report to this file (~2 min)")
	)
	flag.Parse()

	did := false
	if *table1 {
		printTable1(*n, *s)
		did = true
	}
	if *claims {
		printClaims()
		did = true
	}
	if *fig2 != "" {
		runFig2(*fig2)
		did = true
	}
	if *scaling {
		runScaling(*molecule, *system, *cores, *rpn, !*ample)
		did = true
	}
	if *report != "" {
		f, err := os.Create(*report)
		if err != nil {
			fmt.Fprintln(os.Stderr, "figures:", err)
			os.Exit(1)
		}
		//lint:ignore determinism the report header timestamps when it was generated; no measured result depends on it
		err = experiments.WriteReport(f, time.Now())
		cerr := f.Close()
		if err != nil || cerr != nil {
			fmt.Fprintln(os.Stderr, "figures:", err, cerr)
			os.Exit(1)
		}
		fmt.Printf("report written to %s\n", *report)
		did = true
	}
	if !did {
		flag.Usage()
		os.Exit(2)
	}
}

func printTable1(n, s int) {
	sz := sym.ExactSizes(n, s)
	paper := sym.PaperSizes(n, s)
	fmt.Printf("Table 1 — tensor sizes for n = %d, spatial symmetry s = %d\n", n, s)
	fmt.Printf("%-6s %-12s %16s %16s\n", "tensor", "paper form", "paper value", "exact packed")
	rows := []struct {
		name, form    string
		paperV, exact int64
	}{
		{"A", "n^4/4", paper.A, sz.A},
		{"O1", "n^4/2", paper.O1, sz.O1},
		{"O2", "n^4/4", paper.O2, sz.O2},
		{"O3", "n^4/2", paper.O3, sz.O3},
		{"C", "n^4/(4s)", paper.C, sz.C},
	}
	for _, r := range rows {
		fmt.Printf("%-6s %-12s %16d %16d\n", r.name, r.form, r.paperV, r.exact)
	}
}

func printClaims() {
	fmt.Println("Section 1 / Section 8 capacity claims")
	fmt.Println()
	fmt.Printf("%-12s %8s %14s %14s %12s\n", "molecule", "orbitals", "unfused (GB)", "paper (GB)", "match")
	paperGB := map[string]float64{
		"Hyperpolar": 110, "C60H20": 678, "Uracil": 1400, "C40H56": 6500, "Shell-Mixed": 12100,
	}
	for _, m := range fourindex.Molecules() {
		need := float64(m.UnfusedMemoryBytes()) / 1e9
		p := paperGB[m.Name]
		match := "ok"
		if p > 0 && (need < 0.9*p || need > 1.1*p) {
			match = "MISMATCH"
		}
		fmt.Printf("%-12s %8d %14.0f %14.0f %12s\n", m.Name, m.Orbitals, need, p, match)
	}

	fmt.Println()
	mol, _ := fourindex.MoleculeByName("Shell-Mixed")
	adv := fourindex.Advise(mol.Orbitals, experiments.SpatialSymmetry, int64(8.8e12))
	fmt.Printf("Headline: Shell-Mixed needs %.1f TB unfused; on 8.8 TB the hybrid advises %q\n",
		float64(mol.UnfusedMemoryBytes())/1e12, adv.Scheme)
	if adv.Scheme == "fused" {
		fmt.Printf("  fused footprint %.2f TB with Tl = %d — the >12 TB problem runs in <9 TB (Section 8)\n",
			float64(adv.MemoryBytes)/1e12, adv.RequiredTileL)
	}
	fmt.Println()
	fmt.Printf("Fused flop overhead (Section 7.4): %.3fx (paper: ~1.5x)\n",
		lb.FusedFlopOverhead(mol.Orbitals))
}

func runScaling(molecule, system, coreList string, rpn int, constrained bool) {
	var cores []int
	for _, part := range strings.Split(coreList, ",") {
		var c int
		if _, err := fmt.Sscanf(strings.TrimSpace(part), "%d", &c); err != nil || c <= 0 {
			fmt.Fprintf(os.Stderr, "figures: bad core count %q\n", part)
			os.Exit(1)
		}
		cores = append(cores, c)
	}
	outs, err := experiments.Scaling(molecule, system, cores, rpn, constrained)
	if err != nil {
		fmt.Fprintln(os.Stderr, "figures:", err)
		os.Exit(1)
	}
	regime := "memory-constrained (hybrid fused)"
	if !constrained {
		regime = "ample memory (both unfused)"
	}
	fmt.Printf("Strong scaling — %s on System %s, %s\n", molecule, system, regime)
	fmt.Printf("  %6s | %10s %10s %9s | %10s\n", "cores", "hybrid ks", "nwchem ks", "speedup", "efficiency")
	eff := experiments.ParallelEfficiency(outs)
	for i, o := range outs {
		spd := ""
		if o.Speedup > 0 {
			spd = fmt.Sprintf("%.2fx", o.Speedup)
		}
		fmt.Printf("  %6d | %10s %10s %9s | %9.0f%%\n",
			o.Cores,
			experiments.FormatKs(o.HybridKs, false),
			experiments.FormatKs(o.NWChemKs, o.NWChemFailed),
			spd, 100*eff[i])
	}
}

func runFig2(which string) {
	which = strings.ToLower(which)
	var figs []string
	if which == "all" {
		figs = []string{"2a", "2b", "2c", "2d", "2e"}
	} else {
		figs = []string{"2" + strings.TrimPrefix(which, "2")}
	}
	captions := map[string]string{
		"2a": "Hyperpolar: Small 368 Orbitals",
		"2b": "Uracil: Large 698 Orbitals",
		"2c": "C60H20: Medium 580 Orbitals",
		"2d": "C40H56: VeryLarge 1023 Orbitals",
		"2e": "Shell-Mixed: VeryLarge 1194 Orbitals",
	}
	for _, f := range figs {
		fmt.Printf("Figure %s — %s\n", f, captions[f])
		fmt.Printf("  %-6s %6s | %9s %-18s %9s %-18s %7s | %9s %9s %7s | %s\n",
			"system", "cores",
			"hybrid", "(scheme)", "nwchem", "(scheme)", "speedup",
			"paper-h", "paper-nw", "p-spdup", "deviations")
		outs, err := fourindex.RunFigure2(f)
		if err != nil {
			fmt.Fprintln(os.Stderr, "figures:", err)
			os.Exit(1)
		}
		for _, o := range outs {
			dev := "conforms"
			if bad := experiments.CheckShape(o); len(bad) > 0 {
				dev = strings.Join(bad, "; ")
			}
			nwS := ""
			if !o.NWChemFailed {
				nwS = fmt.Sprintf("(%v)", o.NWChemScheme)
			}
			spd := ""
			if o.Speedup > 0 {
				spd = fmt.Sprintf("%.2fx", o.Speedup)
			}
			pspd := ""
			if v := o.PaperSpeedup(); v > 0 {
				pspd = fmt.Sprintf("%.2fx", v)
			}
			fmt.Printf("  %-6s %6d | %9s %-18s %9s %-18s %7s | %9s %9s %7s | %s\n",
				o.System, o.Cores,
				experiments.FormatKs(o.HybridKs, false), fmt.Sprintf("(%v)", o.HybridScheme),
				experiments.FormatKs(o.NWChemKs, o.NWChemFailed), nwS, spd,
				experiments.FormatKs(o.PaperHybridKs, false),
				experiments.FormatKs(o.PaperNWChemKs, o.PaperNWChemFailed && o.PaperNWChemKs == 0),
				pspd, dev)
		}
		fmt.Println("  (times in kiloseconds; paper bars OCR-approximate, flags authoritative)")
		fmt.Println()
	}
}
