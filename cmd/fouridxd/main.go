// Command fouridxd is the multi-tenant four-index transform service: a
// long-running HTTP/JSON server that admits transform jobs against a
// server-wide memory budget, runs them concurrently under per-tenant
// quotas, and drains gracefully — SIGTERM checkpoints in-flight jobs
// and persists the queue, so a restarted fouridxd on the same state
// directory resumes every interrupted transform bitwise identically.
//
// Examples:
//
//	fouridxd -addr :8765 -mem 2GB -state /var/lib/fouridxd
//	curl -s localhost:8765/jobs -d '{"tenant":"alice","n":24,"scheme":"auto"}'
//	curl -s localhost:8765/jobs/j1
//	curl -N localhost:8765/jobs/j1/events
//	curl -s localhost:8765/metrics
//
// Besides transforms, a job may carry a declarative contraction chain:
// the generalized bound engine validates it, prices admission by the
// chain's derived minimum-memory floor, and returns thresholds, fusion
// rankings and frontier curves as the job result. Malformed chains and
// capacities are rejected with 422, never a crash:
//
//	curl -s localhost:8765/jobs -d '{"tenant":"alice","chain":{
//	    "name":"mp2",
//	    "boundaries":[{"name":"AO","elements":1048576},
//	                  {"name":"Half","elements":262144},
//	                  {"name":"MO","elements":196608}],
//	    "ops":[{"name":"op1","rows":32768,"red":32,"prod":8,"operandElements":256},
//	           {"name":"op2","rows":8192,"red":32,"prod":24,"operandElements":768}]}}'
//
// See README "Serving" and DESIGN.md sections 12-13 for the admission
// model, the drain/resume protocol and the chain bound engine.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"syscall"

	"fourindex/internal/serve"
	"fourindex/internal/units"
)

func main() {
	fs := flag.NewFlagSet("fouridxd", flag.ExitOnError)
	addr := fs.String("addr", ":8765", "listen address")
	mem := fs.String("mem", "1GB", "server-wide aggregate-memory budget jobs are admitted against")
	state := fs.String("state", "", "state directory for the job queue and checkpoints (required)")
	procs := fs.Int("procs", 4, "default per-job parallel process count")
	workers := fs.Int("workers", 0, "BLAS worker pool size shared by all jobs (0 = NumCPU)")
	machine := fs.String("machine", "B", "cluster model for cost mode and auto planning (A|B|C)")
	maxRunning := fs.Int("max-running", 2, "maximum concurrently executing jobs")
	maxQueue := fs.Int("queue", 64, "maximum queued jobs across all tenants")
	quota := fs.Int("quota", 8, "maximum queued-or-running jobs per tenant")
	if err := fs.Parse(os.Args[1:]); err != nil {
		os.Exit(2)
	}
	if err := run(*addr, *mem, *state, *procs, *workers, *machine, *maxRunning, *maxQueue, *quota); err != nil {
		fmt.Fprintln(os.Stderr, "fouridxd:", err)
		os.Exit(1)
	}
}

// run builds the server, serves HTTP until SIGTERM/SIGINT, then drains:
// running jobs checkpoint at their next slab boundary, the queue is
// persisted, and the process exits 0 ready to be restarted.
func run(addr, mem, state string, procs, workers int, machine string, maxRunning, maxQueue, quota int) error {
	budget, err := units.ParseBytes(mem)
	if err != nil {
		return fmt.Errorf("-mem: %w", err)
	}
	if state == "" {
		return errors.New("-state is required (drain/resume state lives there)")
	}
	srv, err := serve.New(serve.Config{
		MemBudgetBytes: budget,
		StateDir:       state,
		Procs:          procs,
		Workers:        workers,
		MaxRunning:     maxRunning,
		MaxQueue:       maxQueue,
		TenantQuota:    quota,
		Machine:        machine,
	})
	if err != nil {
		return err
	}

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGTERM, syscall.SIGINT)
	defer stop()

	hs := &http.Server{Addr: addr, Handler: srv.Handler()}
	errc := make(chan error, 1)
	go func() {
		fmt.Printf("fouridxd: serving on %s (budget %s, state %s)\n", addr, units.FormatBytes(budget), state)
		if err := hs.ListenAndServe(); !errors.Is(err, http.ErrServerClosed) {
			errc <- err
		}
	}()

	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}

	fmt.Println("fouridxd: draining (in-flight jobs checkpoint at their next slab boundary)")
	// Drain first so in-flight event streams see their jobs finish;
	// then close the listener.
	if err := srv.Drain(context.Background()); err != nil {
		return fmt.Errorf("drain: %w", err)
	}
	if err := hs.Shutdown(context.Background()); err != nil {
		return fmt.Errorf("http shutdown: %w", err)
	}
	fmt.Println("fouridxd: drained; restart with the same -state to resume interrupted jobs")
	return nil
}
