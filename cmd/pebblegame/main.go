// Command pebblegame plays red-blue pebble games (Hong & Kung, the
// paper's Appendix A) on small computational DAGs and compares the
// measured I/O of concrete schedules against the analytic lower bounds:
//
//	pebblegame -matmul -n 12 -s 51      untiled vs tiled matmul (Fig. 1)
//	pebblegame -fourindex -n 3          unfused vs fused chains (Sec. 5-6)
package main

import (
	"flag"
	"fmt"
	"os"

	"fourindex/internal/cdag"
	"fourindex/internal/lb"
	"fourindex/internal/pebble"
)

func main() {
	var (
		matmul    = flag.Bool("matmul", false, "play the Section 2.3 matmul tiling game")
		fourIndex = flag.Bool("fourindex", false, "play the Section 5-6 fusion games")
		n         = flag.Int("n", 8, "problem extent (matmul: matrix order; fourindex: tensor extent, keep <= 4)")
		s         = flag.Int("s", 0, "red pebbles / fast memory size (0 = auto)")
		tileW     = flag.Int("tile", 4, "tile width for the tiled matmul order")
	)
	flag.Parse()
	if !*matmul && !*fourIndex {
		flag.Usage()
		os.Exit(2)
	}
	if *matmul {
		playMatmul(*n, *s, *tileW)
	}
	if *fourIndex {
		playFourIndex(*n, *s)
	}
}

func playMatmul(n, s, t int) {
	if s == 0 {
		s = 3*t*t + 3
	}
	m := cdag.BuildMatMul(n)
	fmt.Printf("Matrix multiplication C = A*B, n = %d, S = %d red pebbles\n", n, s)
	fmt.Printf("  CDAG: %d vertices (%d inputs, %d outputs)\n",
		m.G.NumVertices(), len(m.G.Inputs()), len(m.G.Outputs()))

	for _, o := range []struct {
		name  string
		order []cdag.VID
	}{
		{"untiled i-j-k (Figure 1 left)", pebble.OrderMatMulUntiled(m)},
		{fmt.Sprintf("tiled T=%d (Figure 1 right)", t), pebble.OrderMatMulTiled(m, t)},
	} {
		res, err := pebble.Simulate(m.G, s, o.order)
		if err != nil {
			fmt.Printf("  %-32s %v\n", o.name, err)
			continue
		}
		fmt.Printf("  %-32s I/O = %6d (loads %d, stores %d), peak red = %d\n",
			o.name, res.IO(), res.Loads, res.Stores, res.PeakRed)
	}
	fmt.Printf("  Hong-Kung bound n^3/sqrt(S):     %8.0f\n", lb.HongKungMatmulLB(int64(n), int64(s)))
	fmt.Printf("  Irony et al. bound:              %8.0f\n", lb.IronyMatmulLB(int64(n), int64(n), int64(n), int64(s)))
	fmt.Printf("  Dongarra et al. bound:           %8.0f\n", lb.DongarraMatmulLB(int64(n), int64(n), int64(n), int64(s)))
	fmt.Printf("  trivial bound (inputs+outputs):  %8d\n", 3*n*n)
}

func playFourIndex(n, s int) {
	if n > 4 {
		fmt.Fprintln(os.Stderr, "pebblegame: -fourindex needs n <= 4 (the CDAG has 4n^5 operation vertices)")
		os.Exit(1)
	}
	f := cdag.BuildFourIndex(n)
	n4 := n * n * n * n
	if s == 0 {
		s = n4 + 3*n*n*n + 4*n*n + 2*n + 8
	}
	fmt.Printf("Four-index transform chain, n = %d, S = %d red pebbles, |C| = %d\n", n, s, n4)
	fmt.Printf("  CDAG: %d vertices\n", f.G.NumVertices())

	for _, o := range []struct {
		name  string
		order []cdag.VID
	}{
		{"unfused op1/2/3/4 (Listing 1)", pebble.OrderFourIndexUnfused(f)},
		{"fused op12/34 (Listing 9)", pebble.OrderFourIndexFusedPair(f)},
		{"fully fused op1234 (Listing 7)", pebble.OrderFourIndexFullyFused(f)},
	} {
		res, err := pebble.Simulate(f.G, s, o.order)
		if err != nil {
			fmt.Printf("  %-32s %v\n", o.name, err)
			continue
		}
		fmt.Printf("  %-32s I/O = %6d, peak red = %d\n", o.name, res.IO(), res.PeakRed)
	}
	fmt.Printf("  full-reuse bound |A|+|B|+|C|:    %8d (achieved by Listing 7 when S >= |C|+2n^3)\n",
		n4+4*n*n+n4)

	if s > n4 {
		small := n4 - 1
		res, err := pebble.Simulate(f.G, small, pebble.OrderFourIndexFullyFused(f))
		if err == nil {
			fmt.Printf("  same schedule with S = |C|-1:    I/O = %6d (> bound: Theorem 6.2's necessity)\n", res.IO())
		}
	}
}
