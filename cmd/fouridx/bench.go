package main

import (
	"flag"
	"fmt"
	"os"

	"fourindex"
)

// runBench implements the `fouridx bench` subcommand: run the fixed
// benchmark matrix (or the CI smoke subset), write the schema-versioned
// JSON report, and — when a baseline is given — gate the run against it,
// exiting non-zero on any regression beyond the tolerance.
func runBench(args []string) {
	fs := flag.NewFlagSet("fouridx bench", flag.ExitOnError)
	var (
		out       = fs.String("o", "BENCH_fouridx.json", "report output path (empty = stdout only)")
		smoke     = fs.Bool("smoke", false, "run the CI smoke subset of the matrix")
		baseline  = fs.String("baseline", "", "baseline report to gate against (e.g. BENCH_fouridx.json)")
		tolerance = fs.Float64("tolerance", 0.15, "regression gate tolerance (0.15 = 15%)")
		repeats   = fs.Int("repeats", 0, "timed repetitions per measured point (0 = matrix default)")
		noMeasure = fs.Bool("no-measure", false, "deterministic accounting only: skip wall-clock measurement for a byte-stable report")
		calibrate = fs.Bool("calibrate", false, "run only the Strassen crossover calibration sweep and print it (make gemm-calibrate)")
		verbose   = fs.Bool("v", false, "print every matrix point, not just the summary")
	)
	fatalIf(fs.Parse(args))

	if *calibrate {
		trials := *repeats
		if trials <= 0 {
			trials = 3
		}
		fmt.Println(fourindex.CalibrateStrassenGemm(fourindex.DefaultStrassenLadder(), trials))
		return
	}

	cfg := fourindex.DefaultBenchConfig()
	if *smoke {
		cfg = fourindex.SmokeBenchConfig()
	}
	if *repeats > 0 {
		cfg.Repeats = *repeats
	}
	if *noMeasure {
		cfg.Measure = false
		cfg.Calibrate = false
	}

	rep, err := fourindex.RunBench(cfg)
	fatalIf(err)

	if *verbose {
		fmt.Printf("%-9s %-18s %-22s %5s %3s %3s | %12s %12s %10s %8s %8s %10s\n",
			"kind", "scheme", "point", "gomax", "ov", "st", "flops", "bytesMoved", "sim s", "attained", "exp frac", "wall ms")
		for _, p := range rep.Points {
			where := fmt.Sprintf("n=%d procs=%d", p.N, p.Procs)
			if p.Kind == "cost" {
				where = fmt.Sprintf("%s/%s/%d", p.Molecule, p.System, p.Procs)
			}
			wall := "-"
			if p.Measured != nil {
				wall = fmt.Sprintf("%.2f", 1e3*p.Measured.WallSeconds)
			}
			ov := "off"
			if p.Overlap {
				ov = "on"
			}
			st := "off"
			if p.Strassen {
				st = "on"
			}
			fmt.Printf("%-9s %-18s %-22s %5d %3s %3s | %12.4g %12.4g %10.2f %8.3f %8.3f %10s\n",
				p.Kind, p.Scheme, where, p.Gomaxprocs, ov, st,
				float64(p.Flops), float64(p.BytesMoved), p.SimSeconds, p.Attained, p.ExposedCommFraction, wall)
		}
	}
	fmt.Printf("bench:    %d matrix points\n", len(rep.Points))
	if rep.ReadPath != nil {
		fmt.Printf("%s\n", rep.ReadPath)
	}
	if rep.GemmTransB != nil {
		fmt.Printf("%s\n", rep.GemmTransB)
	}
	if rep.Strassen != nil {
		fmt.Printf("%s\n", rep.Strassen)
	}

	if *out != "" {
		f, err := os.Create(*out)
		fatalIf(err)
		err = rep.Encode(f)
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		fatalIf(err)
		fmt.Printf("report:   %s\n", *out)
	}

	if *baseline != "" {
		f, err := os.Open(*baseline)
		fatalIf(err)
		base, err := fourindex.DecodeBenchReport(f)
		f.Close()
		fatalIf(err)
		violations, err := fourindex.BenchGate(rep, base, *tolerance)
		fatalIf(err)
		if len(violations) > 0 {
			fmt.Fprintf(os.Stderr, "fouridx bench: %d regression(s) vs %s (tolerance %.0f%%):\n",
				len(violations), *baseline, 100**tolerance)
			for _, v := range violations {
				fmt.Fprintf(os.Stderr, "  %s\n", v)
			}
			os.Exit(1)
		}
		fmt.Printf("gate:     pass vs %s (tolerance %.0f%%)\n", *baseline, 100**tolerance)
	}
}
