package main

import (
	"flag"
	"fmt"
	"os"

	"fourindex"
	"fourindex/internal/units"
)

// runChaos implements the `fouridx chaos` subcommand: run one transform
// under a seeded random fault plan with checkpoint-restart enabled,
// report the retries, restarts and degradation decisions the run took,
// and (in execute mode) verify the result against a fault-free run of
// the same configuration.
func runChaos(args []string) {
	fs := flag.NewFlagSet("fouridx chaos", flag.ExitOnError)
	var (
		n        = fs.Int("n", 16, "orbital count")
		scheme   = fs.String("scheme", "hybrid", "schedule: unfused | fused12-34 | recompute | fullyfused | fullyfused-inner | hybrid | nwchem-fused12-34 | fused123-4")
		procs    = fs.Int("procs", 4, "parallel processes (overridden by -cores)")
		spatial  = fs.Int("s", 1, "spatial symmetry order (power of two)")
		seed     = fs.Uint64("seed", 42, "integral generator seed")
		chaosSd  = fs.Uint64("chaos-seed", 1, "fault-plan seed (also decides whether a crash is injected)")
		rate     = fs.Float64("rate", 0.05, "transient fault probability per Get/Put/Acc")
		restarts = fs.Int("restarts", 0, "crash-restart budget (0 = default 4)")
		tileN    = fs.Int("tile", 0, "orbital data-tile width (0 = auto)")
		tileL    = fs.Int("tilel", 0, "fused-loop tile width (0 = auto)")
		cost     = fs.Bool("cost", false, "cost-simulation mode (no arithmetic, no result verification)")
		system   = fs.String("system", "", "cluster model A | B | C (enables simulated timing)")
		cores    = fs.Int("cores", 0, "cores on the cluster model (with -system)")
		rpn      = fs.Int("ranks-per-node", 0, "ranks per node (0 = one per core)")
		mem      = fs.String("mem", "", "aggregate memory cap, e.g. 512MB, 9TB (empty = unlimited)")
		overlap  = fs.Bool("overlap", false, "nonblocking communication: faults on nonblocking ops surface at the matching wait")
		strassen = fs.Bool("strassen", false, "route contraction GEMMs above the crossover through the Strassen-Winograd path (execute mode)")
	)
	fatalIf(fs.Parse(args))

	sch, err := fourindex.SchemeByName(*scheme)
	fatalIf(err)
	spec, err := fourindex.NewSpec(*n, *spatial, *seed)
	fatalIf(err)

	opt := fourindex.Options{
		Spec:     spec,
		Procs:    *procs,
		TileN:    *tileN,
		TileL:    *tileL,
		Overlap:  *overlap,
		Strassen: *strassen,
	}
	if *cost {
		opt.Mode = fourindex.ModeCost
	} else {
		opt.Mode = fourindex.ModeExecute
	}
	if *mem != "" {
		b, err := units.ParseBytes(*mem)
		fatalIf(err)
		opt.GlobalMemBytes = b
	}
	if *system != "" {
		m, err := fourindex.MachineByName(*system)
		fatalIf(err)
		c := *cores
		if c == 0 {
			c = *procs
		}
		run, err := m.Configure(c, *rpn)
		fatalIf(err)
		opt.Run = &run
		opt.Procs = c
		fmt.Printf("machine:  %s\n", run)
	}

	plan := fourindex.RandomFaultPlan(*chaosSd, *rate, opt.Procs)
	tr := fourindex.NewTracer(0)
	faulty := opt
	faulty.Trace = tr
	faulty.Faults = &fourindex.FaultInjection{
		Plan:        plan,
		Checkpoint:  fourindex.NewMemCheckpoint(),
		MaxRestarts: *restarts,
	}

	fmt.Printf("plan:     seed %d, transient rate %g", *chaosSd, *rate)
	if plan.Crash != nil {
		fmt.Printf(", crash at (run %d, proc %d, op %d)", plan.Crash.Run, plan.Crash.Proc, plan.Crash.Seq)
	}
	fmt.Println()

	res, err := fourindex.Transform(sch, faulty)
	if err != nil {
		kind := "schedule error"
		if fourindex.FaultInjected(err) {
			kind = "typed terminal fault (correctness preserved: no result produced)"
		}
		fmt.Printf("outcome:  failed — %s\n", kind)
		fmt.Printf("error:    %v\n", err)
		fatalIf(fourindex.WriteFaultSummary(os.Stdout, fourindex.TraceFaultSummary(tr)))
		os.Exit(1)
	}

	fmt.Printf("outcome:  completed, scheme %v", res.Scheme)
	if res.ChosenScheme != res.Scheme {
		fmt.Printf(" (chose %v)", res.ChosenScheme)
	}
	fmt.Println()
	if res.ElapsedSeconds > 0 {
		fmt.Printf("sim time: %.1f s\n", res.ElapsedSeconds)
	}
	fmt.Printf("rebuilds: %d runtime rebuilds after injected crashes\n", res.Restarts)
	fatalIf(fourindex.WriteFaultSummary(os.Stdout, fourindex.TraceFaultSummary(tr)))

	if !*cost {
		clean, err := fourindex.Transform(sch, opt)
		fatalIf(err)
		got, want := res.C.Data(), clean.C.Data()
		if len(got) != len(want) {
			fatalIf(fmt.Errorf("chaos result has %d elements, fault-free has %d", len(got), len(want)))
		}
		for i := range got {
			if got[i] != want[i] {
				fatalIf(fmt.Errorf("chaos result diverges from fault-free run at element %d: %v != %v", i, got[i], want[i]))
			}
		}
		fmt.Printf("verify:   C bitwise identical to the fault-free run (%d elements)\n", len(got))
	}
}
