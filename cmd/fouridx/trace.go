package main

import (
	"flag"
	"fmt"
	"os"

	"fourindex"
	"fourindex/internal/units"
)

// runTrace implements the `fouridx trace` subcommand: run one transform
// with the execution tracer attached, write the Chrome trace_event JSON
// (loadable in chrome://tracing or https://ui.perfetto.dev) to the
// output path, and print the per-phase bound-vs-actual audit table.
func runTrace(args []string) {
	fs := flag.NewFlagSet("fouridx trace", flag.ExitOnError)
	var (
		n        = fs.Int("n", 16, "orbital count (ignored when -molecule is set)")
		molecule = fs.String("molecule", "", "benchmark molecule (Hyperpolar, C60H20, Uracil, C40H56, Shell-Mixed)")
		scheme   = fs.String("scheme", "hybrid", "schedule: unfused | fused12-34 | recompute | fullyfused | fullyfused-inner | hybrid | nwchem-fused12-34 | fused123-4")
		procs    = fs.Int("procs", 4, "parallel processes (overridden by -cores)")
		spatial  = fs.Int("s", 1, "spatial symmetry order (power of two)")
		seed     = fs.Uint64("seed", 42, "integral generator seed")
		tileN    = fs.Int("tile", 0, "orbital data-tile width (0 = auto)")
		tileL    = fs.Int("tilel", 0, "fused-loop tile width (0 = auto)")
		alphaPar = fs.Int("alphapar", 1, "alpha-parallelisation factor (Section 7.3)")
		cost     = fs.Bool("cost", false, "cost-simulation mode (no arithmetic; required for large n)")
		system   = fs.String("system", "", "cluster model A | B | C (enables simulated timing)")
		cores    = fs.Int("cores", 0, "cores on the cluster model (with -system)")
		rpn      = fs.Int("ranks-per-node", 0, "ranks per node (0 = one per core)")
		mem      = fs.String("mem", "", "aggregate memory cap, e.g. 512MB, 9TB (empty = unlimited)")
		overlap  = fs.Bool("overlap", false, "nonblocking communication: double-buffer gets and pipeline writes so transfers overlap compute")
		ovEff    = fs.Float64("overlap-eff", 0, "fraction of in-flight transfer time the cost model may hide, in (0, 1] (0 = 1, full overlap)")
		strassen = fs.Bool("strassen", false, "route contraction GEMMs above the crossover through the Strassen-Winograd path (execute mode)")
		events   = fs.Int("events", 0, "event ring capacity (0 = default 32768)")
		out      = fs.String("o", "trace.json", "Chrome trace_event JSON output path")
	)
	fatalIf(fs.Parse(args))

	sch, err := fourindex.SchemeByName(*scheme)
	fatalIf(err)

	orbitals := *n
	if *molecule != "" {
		m, err := fourindex.MoleculeByName(*molecule)
		fatalIf(err)
		orbitals = m.Orbitals
		if !*cost {
			fmt.Fprintf(os.Stderr, "note: %s has %d orbitals; forcing -cost mode\n", m.Name, orbitals)
			*cost = true
		}
	}
	spec, err := fourindex.NewSpec(orbitals, *spatial, *seed)
	fatalIf(err)

	tr := fourindex.NewTracer(*events)
	opt := fourindex.Options{
		Spec:              spec,
		Procs:             *procs,
		TileN:             *tileN,
		TileL:             *tileL,
		AlphaPar:          *alphaPar,
		Overlap:           *overlap,
		OverlapEfficiency: *ovEff,
		Strassen:          *strassen,
		Trace:             tr,
	}
	if *cost {
		opt.Mode = fourindex.ModeCost
	} else {
		opt.Mode = fourindex.ModeExecute
	}
	if *mem != "" {
		b, err := units.ParseBytes(*mem)
		fatalIf(err)
		opt.GlobalMemBytes = b
	}
	if *system != "" {
		m, err := fourindex.MachineByName(*system)
		fatalIf(err)
		c := *cores
		if c == 0 {
			c = *procs
		}
		run, err := m.Configure(c, *rpn)
		fatalIf(err)
		opt.Run = &run
		opt.Procs = c
		fmt.Printf("machine:  %s\n", run)
	}

	res, err := fourindex.Transform(sch, opt)
	fatalIf(err)

	f, err := os.Create(*out)
	fatalIf(err)
	err = tr.WriteChromeTrace(f)
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	fatalIf(err)

	fmt.Printf("scheme:   %v", res.Scheme)
	if res.ChosenScheme != res.Scheme {
		fmt.Printf(" (chose %v)", res.ChosenScheme)
	}
	fmt.Println()
	fmt.Printf("trace:    %s (%d spans, %d events kept, %d overwritten)\n",
		*out, len(tr.Spans()), len(tr.Events()), tr.Dropped())
	if res.ElapsedSeconds > 0 {
		fmt.Printf("sim time: %.1f s\n", res.ElapsedSeconds)
	}
	if total := res.ExposedCommSeconds + res.OverlapCommSeconds; *overlap && total > 0 {
		fmt.Printf("overlap:  %.1f s transfer hidden, %.1f s exposed (%.0f%% exposed)\n",
			res.OverlapCommSeconds, res.ExposedCommSeconds, 100*res.ExposedCommSeconds/total)
	}

	// Per-process fast memory for the contraction bounds: an explicit
	// local cap wins; otherwise an even share of the aggregate cap;
	// otherwise 0, which selects the memory-independent |in|+|out| floor.
	var fastWords int64
	switch {
	case opt.LocalMemBytes > 0:
		fastWords = opt.LocalMemBytes / 8
	case opt.GlobalMemBytes > 0:
		fastWords = opt.GlobalMemBytes / 8 / int64(opt.Procs)
	}
	fmt.Println()
	fmt.Println("bound-vs-actual audit (elements; attained = lb / actual):")
	fatalIf(fourindex.WriteTraceAuditTable(os.Stdout, tr.Audit(orbitals, *spatial, fastWords)))
}
