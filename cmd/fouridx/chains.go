package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"

	"fourindex"
)

// runChains implements the `fouridx chains` subcommand: build a named
// contraction chain (the four-index transform, the MP2-style
// half-transform, or the rectangular two-matmul chain), run the
// generalized bound engine over it, and print thresholds, the fusion
// ranking and — with -cap — per-configuration bounds and feasibility at
// a fast-memory capacity.
//
//	fouridx chains -chain fourindex -a 368 -b 8
//	fouridx chains -chain mp2 -a 8 -b 24 -cap 100000
//	fouridx chains -chain rect -a 64 -b 6 -json
func runChains(args []string) {
	fatalIf(chainsCmd(args, os.Stdout))
}

// chainsCmd is the testable body of runChains: all validation happens
// before the first byte of output, so a bad chain name, extent or flag
// yields an error (and a non-zero exit) with no partial table.
func chainsCmd(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("fouridx chains", flag.ContinueOnError)
	var (
		name      = fs.String("chain", "fourindex", "chain: fourindex (a=n, b=s) | mp2 (a=occ, b=virt) | rect (a=n, b=k)")
		a         = fs.Int("a", 368, "first extent argument of the chain")
		b         = fs.Int("b", 8, "second extent argument of the chain")
		cap       = fs.Int64("cap", 0, "fast-memory capacity in elements (0 = rankings and curves only)")
		perDecade = fs.Int("per-decade", 12, "capacity-grid resolution for frontier curves")
		jsonOut   = fs.Bool("json", false, "emit the full report as JSON on stdout")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() > 0 {
		return fmt.Errorf("chains: unexpected argument %q", fs.Arg(0))
	}

	c, err := fourindex.ChainByName(*name, *a, *b)
	if err != nil {
		return err
	}
	rep, err := fourindex.AnalyzeChain(c, *cap, *perDecade)
	if err != nil {
		return err
	}

	if *jsonOut {
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		return enc.Encode(rep)
	}
	return fourindex.WriteChainReport(stdout, rep)
}
