// Command fouridx runs the four-index integral transform with a chosen
// schedule, either executing real arithmetic at small extents or
// simulating data movement and wall time at molecule scale on one of the
// paper's cluster models.
//
// Examples:
//
//	fouridx -n 24 -scheme hybrid -procs 8
//	fouridx -molecule Uracil -scheme fullyfused-inner -system B -cores 140 -cost
//	fouridx -n 16 -scheme unfused -mem 4GB
//
// The trace subcommand additionally records an execution trace and
// prints the bound-vs-actual audit (see README "Tracing & profiling"):
//
//	fouridx trace -n 24 -scheme fullyfused-inner -system A -cores 8 -o trace.json
//
// The chaos subcommand runs a transform under a seeded fault-injection
// plan with checkpoint-restart, reports retries/restarts/degradations,
// and verifies the result against a fault-free run (see README "Chaos
// testing"):
//
//	fouridx chaos -n 18 -scheme fullyfused-inner -procs 4 -rate 0.05 -chaos-seed 7
//
// The bench subcommand runs the reproducible benchmark matrix, writes
// the schema-versioned report, and optionally gates it against a
// checked-in baseline (see README "Benchmarking"):
//
//	fouridx bench -o BENCH_fouridx.json
//	fouridx bench -smoke -baseline BENCH_fouridx.json -tolerance 0.15
//	fouridx bench -calibrate
//
// The frontier subcommand computes the capacity-vs-bound frontier
// artifact, checks the checked-in copy for staleness, and gates the
// frontier-driven tuner against the benchmark baseline (see README
// "Autotuning"):
//
//	fouridx frontier -o FRONTIER_fouridx.json
//	fouridx frontier -check -o FRONTIER_fouridx.json
//	fouridx frontier -gate -baseline BENCH_fouridx.json
//
// The chains subcommand runs the generalized bound engine over a named
// contraction chain — the four-index transform or the non-four-index
// scenarios — printing thresholds, fusion rankings and capacity pricing
// (see README "Arbitrary chains"):
//
//	fouridx chains -chain mp2 -a 8 -b 24 -cap 100000
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"fourindex"
	"fourindex/internal/units"
)

func main() {
	if len(os.Args) > 1 {
		switch os.Args[1] {
		case "trace":
			runTrace(os.Args[2:])
			return
		case "chaos":
			runChaos(os.Args[2:])
			return
		case "bench":
			runBench(os.Args[2:])
			return
		case "frontier":
			runFrontier(os.Args[2:])
			return
		case "chains":
			runChains(os.Args[2:])
			return
		default:
			// A first argument that is not a flag must be a subcommand;
			// anything unrecognised used to fall through and run the
			// default transform silently — reject it instead.
			if len(os.Args[1]) == 0 || os.Args[1][0] != '-' {
				fatalIf(fmt.Errorf("unknown subcommand %q (expected trace, chaos, bench, frontier or chains)", os.Args[1]))
			}
		}
	}
	var (
		n        = flag.Int("n", 16, "orbital count (ignored when -molecule is set)")
		molecule = flag.String("molecule", "", "benchmark molecule (Hyperpolar, C60H20, Uracil, C40H56, Shell-Mixed)")
		scheme   = flag.String("scheme", "hybrid", "schedule: unfused | fused12-34 | recompute | fullyfused | fullyfused-inner | hybrid | nwchem-fused12-34 | fused123-4")
		procs    = flag.Int("procs", 4, "parallel processes (overridden by -cores)")
		spatial  = flag.Int("s", 1, "spatial symmetry order (power of two)")
		seed     = flag.Uint64("seed", 42, "integral generator seed")
		tileN    = flag.Int("tile", 0, "orbital data-tile width (0 = auto)")
		tileL    = flag.Int("tilel", 0, "fused-loop tile width (0 = auto)")
		alphaPar = flag.Int("alphapar", 1, "alpha-parallelisation factor (Section 7.3)")
		cost     = flag.Bool("cost", false, "cost-simulation mode (no arithmetic; required for large n)")
		system   = flag.String("system", "", "cluster model A | B | C (enables simulated timing)")
		cores    = flag.Int("cores", 0, "cores on the cluster model (with -system)")
		rpn      = flag.Int("ranks-per-node", 0, "ranks per node (0 = one per core)")
		mem      = flag.String("mem", "", "aggregate memory cap, e.g. 512MB, 9TB (empty = unlimited)")
		overlap  = flag.Bool("overlap", false, "nonblocking communication: double-buffer gets and pipeline writes so transfers overlap compute")
		ovEff    = flag.Float64("overlap-eff", 0, "fraction of in-flight transfer time the cost model may hide, in (0, 1] (0 = 1, full overlap)")
		strassen = flag.Bool("strassen", false, "route contraction GEMMs above the crossover through the Strassen-Winograd path (execute mode)")
		verbose  = flag.Bool("v", false, "print the transformed tensor's checksum")
		autotune = flag.Bool("autotune", false, "sweep configurations in simulation and report the fastest (needs -system)")
		jsonOut  = flag.Bool("json", false, "emit the result as JSON on stdout")
	)
	flag.Parse()

	sch, err := fourindex.SchemeByName(*scheme)
	fatalIf(err)

	orbitals := *n
	if *molecule != "" {
		m, err := fourindex.MoleculeByName(*molecule)
		fatalIf(err)
		orbitals = m.Orbitals
		if !*cost {
			fmt.Fprintf(os.Stderr, "note: %s has %d orbitals; forcing -cost mode\n", m.Name, orbitals)
			*cost = true
		}
	}
	spec, err := fourindex.NewSpec(orbitals, *spatial, *seed)
	fatalIf(err)

	opt := fourindex.Options{
		Spec:              spec,
		Procs:             *procs,
		TileN:             *tileN,
		TileL:             *tileL,
		AlphaPar:          *alphaPar,
		Overlap:           *overlap,
		OverlapEfficiency: *ovEff,
		Strassen:          *strassen,
	}
	if *cost {
		opt.Mode = fourindex.ModeCost
	} else {
		opt.Mode = fourindex.ModeExecute
	}
	if *mem != "" {
		b, err := units.ParseBytes(*mem)
		fatalIf(err)
		opt.GlobalMemBytes = b
	}
	if *system != "" {
		m, err := fourindex.MachineByName(*system)
		fatalIf(err)
		c := *cores
		if c == 0 {
			c = *procs
		}
		run, err := m.Configure(c, *rpn)
		fatalIf(err)
		opt.Run = &run
		opt.Procs = c
		fmt.Printf("machine:  %s\n", run)
	}

	if *autotune {
		if opt.Run == nil {
			fatalIf(fmt.Errorf("-autotune needs -system for the cost model"))
		}
		ft, err := fourindex.TuneFrontier(opt, autotuneSpace(orbitals, opt.Procs), 0)
		fatalIf(err)
		fmt.Printf("autotune: frontier at S = %.3g elements, %d of %d configurations simulated\n",
			float64(ft.CapacityElements), ft.Simulated, ft.FullSpace)
		fmt.Printf("  %-18s %-10s %6s %12s %10s\n",
			"scheme", "config", "fits", "bound elems", "floor s")
		for _, c := range ft.Candidates {
			mark := " "
			if c.Shortlisted {
				mark = "*"
			}
			fmt.Printf("%s %-18v %-10s %6v %12.4g %10.4f\n",
				mark, c.Scheme, c.Config, c.Feasible, c.BoundElements, c.LowerBoundSeconds)
		}
		fmt.Printf("  %-18s %5s %5s %8s %5s | %10s %12s\n",
			"scheme", "tileN", "tileL", "alphaPar", "lPar", "sim s", "peak GB")
		shown := 0
		for _, p := range ft.Points {
			if p.Err != "" {
				continue
			}
			fmt.Printf("  %-18v %5d %5d %8d %5d | %10.1f %12.2f\n",
				p.Scheme, p.TileN, p.TileL, p.AlphaPar, p.LPar,
				p.Seconds, float64(p.PeakBytes)/1e9)
			if shown++; shown >= 8 {
				break
			}
		}
		fmt.Printf("pick:     %v tileN=%d tileL=%d alphaPar=%d lPar=%d overlap=%v (%.1f s simulated)\n",
			ft.Pick.Scheme, ft.Pick.TileN, ft.Pick.TileL, ft.Pick.AlphaPar, ft.Pick.LPar,
			ft.Pick.Overlap, ft.Pick.Seconds)
		return
	}

	res, err := fourindex.Transform(sch, opt)
	fatalIf(err)

	if *jsonOut {
		fatalIf(emitJSON(res, orbitals, *spatial, opt.Procs))
		return
	}

	fmt.Printf("scheme:   %v", res.Scheme)
	if res.ChosenScheme != res.Scheme {
		fmt.Printf(" (chose %v)", res.ChosenScheme)
	}
	fmt.Println()
	fmt.Printf("n:        %d orbitals, spatial symmetry %d, %d procs\n", orbitals, *spatial, opt.Procs)
	fmt.Printf("flops:    %.4g\n", float64(res.Totals.Flops))
	fmt.Printf("comm:     %.4g elements inter-node, %.4g intra-node\n",
		float64(res.CommVolume), float64(res.IntraVolume))
	fmt.Printf("messages: %d\n", res.Totals.CommMessages)
	fmt.Printf("peak mem: %.4g GB aggregate\n", float64(res.PeakGlobalBytes)/1e9)
	if res.ElapsedSeconds > 0 {
		fmt.Printf("sim time: %.1f s (%.0f%% idle at barriers)\n",
			res.ElapsedSeconds, 100*res.IdleFraction)
	}
	if total := res.ExposedCommSeconds + res.OverlapCommSeconds; *overlap && total > 0 {
		fmt.Printf("overlap:  %.1f s transfer hidden, %.1f s exposed (%.0f%% exposed)\n",
			res.OverlapCommSeconds, res.ExposedCommSeconds, 100*res.ExposedCommSeconds/total)
	}
	if len(res.Phases) > 0 {
		fmt.Printf("phases:\n")
		fmt.Printf("  %-18s %10s %12s %12s\n", "phase", "sim s", "flops", "comm el")
		for _, ph := range res.Phases {
			fmt.Printf("  %-18s %10.2f %12.4g %12.4g\n",
				ph.Name, ph.Seconds, float64(ph.Flops), float64(ph.CommElements))
		}
	}
	if *verbose && res.C != nil {
		var sum float64
		for _, v := range res.C.Data() {
			sum += v * v
		}
		fmt.Printf("|C|_F^2:  %.12g\n", sum)
	}
}

func fatalIf(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "fouridx:", err)
		os.Exit(1)
	}
}

// jsonResult is the machine-readable result shape.
type jsonResult struct {
	Scheme        string      `json:"scheme"`
	ChosenScheme  string      `json:"chosenScheme"`
	Orbitals      int         `json:"orbitals"`
	Spatial       int         `json:"spatialSymmetry"`
	Procs         int         `json:"procs"`
	Flops         int64       `json:"flops"`
	CommElements  int64       `json:"commElements"`
	IntraElements int64       `json:"intraElements"`
	DiskElements  int64       `json:"diskElements"`
	Messages      int64       `json:"messages"`
	PeakBytes     int64       `json:"peakGlobalBytes"`
	SimSeconds    float64     `json:"simSeconds"`
	IdleFraction  float64     `json:"idleFraction"`
	Phases        []jsonPhase `json:"phases,omitempty"`
}

type jsonPhase struct {
	Name          string  `json:"name"`
	Seconds       float64 `json:"seconds"`
	Flops         int64   `json:"flops"`
	CommElements  int64   `json:"commElements"`
	IntraElements int64   `json:"intraElements"`
	Messages      int64   `json:"messages"`
}

func emitJSON(res *fourindex.Result, orbitals, spatial, procs int) error {
	out := jsonResult{
		Scheme:        res.Scheme.String(),
		ChosenScheme:  res.ChosenScheme.String(),
		Orbitals:      orbitals,
		Spatial:       spatial,
		Procs:         procs,
		Flops:         res.Totals.Flops,
		CommElements:  res.CommVolume,
		IntraElements: res.IntraVolume,
		DiskElements:  res.DiskVolume,
		Messages:      res.Totals.CommMessages,
		PeakBytes:     res.PeakGlobalBytes,
		SimSeconds:    res.ElapsedSeconds,
		IdleFraction:  res.IdleFraction,
	}
	for _, ph := range res.Phases {
		out.Phases = append(out.Phases, jsonPhase{
			Name: ph.Name, Seconds: ph.Seconds, Flops: ph.Flops,
			CommElements: ph.CommElements, IntraElements: ph.IntraElements,
			Messages: ph.Messages,
		})
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}

// autotuneSpace derives a lean tuning space centred on the benchmark
// matrix's tiling heuristic (~n/24-wide data tiles, alpha parallelism
// matched to the rank count): the heuristic knob, a 2x coarser tile,
// and both parallelisation settings. The package-level TuneSpace
// defaults reach down to single-element tiles, which are pathological
// to cost-simulate at small n (minutes per configuration); this space
// keeps -autotune interactive at every extent.
func autotuneSpace(n, procs int) fourindex.TuneSpace {
	tileN := max(2, (n+23)/24)
	nt := (n + tileN - 1) / tileN
	alphaPar := max(1, (procs+nt-1)/nt)
	if alphaPar > nt {
		alphaPar = nt
	}
	dedup := func(vals ...int) []int {
		var out []int
		for _, v := range vals {
			if len(out) == 0 || out[len(out)-1] != v {
				out = append(out, v)
			}
		}
		return out
	}
	return fourindex.TuneSpace{
		TileNs:    dedup(tileN, 2*tileN),
		TileLs:    dedup(tileN, 2*tileN),
		AlphaPars: dedup(1, alphaPar),
		LPars:     []int{1, 2},
	}
}
