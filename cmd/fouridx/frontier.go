package main

import (
	"bytes"
	"flag"
	"fmt"
	"os"

	"fourindex"
)

// runFrontier implements the `fouridx frontier` subcommand: compute the
// capacity-vs-bound frontier artifact (FRONTIER_fouridx.json), check a
// checked-in copy for staleness byte-for-byte, and gate the
// frontier-driven tuner against the benchmark baseline.
func runFrontier(args []string) {
	fs := flag.NewFlagSet("fouridx frontier", flag.ExitOnError)
	var (
		out      = fs.String("o", "FRONTIER_fouridx.json", "artifact output path (empty = stdout summary only)")
		check    = fs.Bool("check", false, "do not write: recompute and fail if the artifact at -o is stale")
		gate     = fs.Bool("gate", false, "run the tuner gate against -baseline")
		baseline = fs.String("baseline", "BENCH_fouridx.json", "benchmark baseline for -gate")
		verbose  = fs.Bool("v", false, "print every schedule's knee and feasibility capacities")
	)
	fatalIf(fs.Parse(args))

	rep := fourindex.RunFrontier(nil)
	for _, pf := range rep.Problems {
		fmt.Printf("frontier: %s n=%d s=%d — %d capacities, knees at S=%d (single), %d (pair), %d (|C|)\n",
			pf.Name, pf.N, pf.Sym, len(pf.Grid),
			pf.Thresholds.SingleTight, pf.Thresholds.PairFusion, pf.Thresholds.FullReuse)
		if *verbose {
			fmt.Printf("  %-20s %-12s %16s %16s %16s\n",
				"scheme", "config", "floor (elems)", "flat at S", "feasible at S")
			for _, sf := range pf.Schedules {
				fmt.Printf("  %-20s %-12s %16d %16d %16d\n",
					sf.Scheme, sf.Config, sf.FloorElements, sf.FlatAtS, sf.FeasibleAtS)
			}
		}
	}

	if *out != "" {
		var buf bytes.Buffer
		fatalIf(rep.Encode(&buf))
		if *check {
			existing, err := os.ReadFile(*out)
			fatalIf(err)
			if !bytes.Equal(existing, buf.Bytes()) {
				fmt.Fprintf(os.Stderr, "fouridx frontier: %s is stale (regenerate with `make frontier`)\n", *out)
				os.Exit(1)
			}
			fmt.Printf("check:    %s is current\n", *out)
		} else {
			fatalIf(os.WriteFile(*out, buf.Bytes(), 0o644))
			fmt.Printf("artifact: %s\n", *out)
		}
	}

	if *gate {
		f, err := os.Open(*baseline)
		fatalIf(err)
		base, err := fourindex.DecodeBenchReport(f)
		f.Close()
		fatalIf(err)
		results, violations, err := fourindex.FrontierTunerGate(base)
		fatalIf(err)
		for _, r := range results {
			fmt.Printf("gate:     %s/%s/%d baseline %s %.2fs, pick %s %.2fs (%d simulations)\n",
				r.Molecule, r.System, r.Cores, r.BaselineScheme, r.BaselineSeconds,
				r.Pick.Scheme, r.PickSeconds, r.Simulated)
		}
		if len(violations) > 0 {
			fmt.Fprintf(os.Stderr, "fouridx frontier: tuner gate failed:\n")
			for _, v := range violations {
				fmt.Fprintf(os.Stderr, "  %s\n", v)
			}
			os.Exit(1)
		}
		fmt.Printf("gate:     pass vs %s\n", *baseline)
	}
}
