package main

import (
	"encoding/json"
	"strings"
	"testing"
)

// TestChainsCmdTable drives the chains subcommand body over valid and
// invalid invocations: valid runs print the ranking (and capacity)
// tables, invalid ones error before the first byte of output.
func TestChainsCmdTable(t *testing.T) {
	cases := []struct {
		name    string
		args    []string
		wantErr string   // substring of the error, "" = success
		wantOut []string // substrings that must appear on success
	}{
		{
			name: "fourindex default",
			args: []string{"-a", "100", "-b", "4"},
			wantOut: []string{
				"chain fourindex: 4 ops",
				"op1234",
				"op1/2/3/4",
				"IO-FLOOR",
			},
		},
		{
			name: "mp2 with capacity",
			args: []string{"-chain", "mp2", "-a", "8", "-b", "24", "-cap", "2000000"},
			wantOut: []string{
				"chain mp2: 2 ops",
				"at capacity 2000000",
				"best op12",
			},
		},
		{
			name: "rect infeasible capacity",
			args: []string{"-chain", "rect", "-a", "64", "-b", "6", "-cap", "10"},
			wantOut: []string{
				"chain rect: 2 ops",
				"none feasible",
			},
		},
		{name: "unknown chain", args: []string{"-chain", "ccsd"}, wantErr: "ccsd"},
		{name: "bad extent", args: []string{"-chain", "rect", "-a", "3", "-b", "5"}, wantErr: "rect"},
		{name: "negative capacity", args: []string{"-cap", "-3"}, wantErr: "capacity"},
		{name: "stray argument", args: []string{"extra"}, wantErr: `unexpected argument "extra"`},
		{name: "malformed flag", args: []string{"-a", "abc"}, wantErr: "invalid value"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var out strings.Builder
			err := chainsCmd(tc.args, &out)
			if tc.wantErr != "" {
				if err == nil || !strings.Contains(err.Error(), tc.wantErr) {
					t.Fatalf("chainsCmd(%v) error = %v, want substring %q", tc.args, err, tc.wantErr)
				}
				if out.Len() != 0 {
					t.Errorf("chainsCmd(%v) printed %d bytes before failing:\n%s", tc.args, out.Len(), out.String())
				}
				return
			}
			if err != nil {
				t.Fatalf("chainsCmd(%v): %v", tc.args, err)
			}
			for _, want := range tc.wantOut {
				if !strings.Contains(out.String(), want) {
					t.Errorf("chainsCmd(%v) output missing %q:\n%s", tc.args, want, out.String())
				}
			}
		})
	}
}

// TestChainsCmdJSON checks the -json path decodes back into a report.
func TestChainsCmdJSON(t *testing.T) {
	var out strings.Builder
	if err := chainsCmd([]string{"-chain", "mp2", "-a", "6", "-b", "18", "-json"}, &out); err != nil {
		t.Fatalf("chainsCmd: %v", err)
	}
	var rep struct {
		Chain    string `json:"chain"`
		Ops      int    `json:"ops"`
		Rankings []any  `json:"rankings"`
	}
	if err := json.Unmarshal([]byte(out.String()), &rep); err != nil {
		t.Fatalf("decode: %v", err)
	}
	if rep.Chain != "mp2" || rep.Ops != 2 || len(rep.Rankings) != 2 {
		t.Errorf("decoded report %+v, want mp2/2 with 2 rankings", rep)
	}
}
