// Command fuseadvisor prints the paper's lower-bound analysis (Sections
// 4-6) for a problem size: tensor sizes, the I/O lower bound of every
// fusion configuration with the Theorem 5.2 ordering, the fast-memory
// thresholds, and the Section 7.4 fuse/unfuse recommendation for a given
// aggregate memory.
//
// Example:
//
//	fuseadvisor -n 698 -s 8 -mem 1.4TB
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"fourindex"
	"fourindex/internal/lb"
	"fourindex/internal/sym"
	"fourindex/internal/units"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "fuseadvisor:", err)
		os.Exit(1)
	}
}

// frontierConfigs names the curves the frontier table prints, in order.
var frontierConfigs = []string{"op1/2/3/4", "op12/34", "op123/4", "op1234"}

// run is the testable command body. Every input — flags, extents,
// memory sizes, config names — is validated before the first byte of
// output, so a bad invocation exits non-zero with no partial tables.
func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("fuseadvisor", flag.ContinueOnError)
	var (
		n       = fs.Int("n", 368, "orbital count")
		spatial = fs.Int("s", 8, "spatial symmetry order (power of two)")
		mem     = fs.String("mem", "", "aggregate physical memory, e.g. 110GB (empty: skip advice)")
		local   = fs.String("local", "", "per-process local memory, e.g. 4GB (with -mem: prints the Section 3 two-level plan)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() > 0 {
		return fmt.Errorf("unexpected argument %q", fs.Arg(0))
	}
	if *n <= 0 {
		return fmt.Errorf("-n must be positive, got %d", *n)
	}
	if *spatial < 1 {
		return fmt.Errorf("-s must be at least 1, got %d", *spatial)
	}
	if *local != "" && *mem == "" {
		return fmt.Errorf("-local needs -mem for the aggregate level")
	}
	var memBytes, localBytes int64
	if *mem != "" {
		b, err := units.ParseBytes(*mem)
		if err != nil {
			return err
		}
		memBytes = b
	}
	if *local != "" {
		b, err := units.ParseBytes(*local)
		if err != nil {
			return err
		}
		localBytes = b
	}
	configs := make([]lb.FusionConfig, len(frontierConfigs))
	for i, name := range frontierConfigs {
		c, err := lb.ConfigByName(name)
		if err != nil {
			return err
		}
		configs[i] = c
	}

	sz := sym.ExactSizes(*n, *spatial)
	gb := func(words int64) float64 { return float64(words) * 8 / 1e9 }

	fmt.Fprintf(stdout, "Four-index transform analysis: n = %d, spatial symmetry s = %d\n\n", *n, *spatial)
	fmt.Fprintf(stdout, "Tensor sizes (Table 1, exact packed counts):\n")
	fmt.Fprintf(stdout, "  %-4s %14s %10s\n", "", "elements", "GB")
	for _, row := range []struct {
		name string
		w    int64
	}{{"A", sz.A}, {"O1", sz.O1}, {"O2", sz.O2}, {"O3", sz.O3}, {"C", sz.C}} {
		fmt.Fprintf(stdout, "  %-4s %14d %10.2f\n", row.name, row.w, gb(row.w))
	}

	fmt.Fprintf(stdout, "\nFusion configurations ranked by I/O lower bound (Section 5.3):\n")
	fmt.Fprintf(stdout, "  %-12s %16s %8s %s\n", "config", "I/O (elements)", "GB", "bound")
	for _, rc := range lb.RankConfigs(sz) {
		tight := "tight"
		if !rc.Tight {
			tight = "lower bound only"
		}
		fmt.Fprintf(stdout, "  %-12s %16d %8.1f %s\n", rc.Config, rc.IO, gb(rc.IO), tight)
	}

	fmt.Fprintf(stdout, "\nCapacity-vs-bound frontier (knees where each curve flattens):\n")
	fmt.Fprintf(stdout, "  %-12s %16s %16s %16s\n", "config", "floor (elements)", "flat at S", "min memory")
	grid := lb.CapacityGrid(*n, *spatial, 0)
	for _, c := range configs {
		cv := lb.ComputeCurve(c, *n, *spatial, grid)
		fmt.Fprintf(stdout, "  %-12s %16d %16d %16d\n", cv.Config, cv.FloorElements, cv.FlatAtS, cv.MinMemoryElements)
	}

	n64 := int64(*n)
	fmt.Fprintf(stdout, "\nFast-memory thresholds:\n")
	fmt.Fprintf(stdout, "  single contraction tight (S >= n^2+n+1):     %d words\n", lb.SingleTightThreshold(n64))
	fmt.Fprintf(stdout, "  pair fusion useful (S >= 3n^2+n+1):          %d words\n", lb.PairFusionThreshold(n64))
	fmt.Fprintf(stdout, "  full reuse possible (S >= |C|, Thm 6.2):     %d words (%.2f GB)\n", sz.C, gb(sz.C))
	fmt.Fprintf(stdout, "  Listing 7 sufficient (S >= |C| + 2n^3):      %d words\n", lb.FullReuseSufficientS(n64, sz.C))

	fmt.Fprintf(stdout, "\nSchedule memory requirements:\n")
	fmt.Fprintf(stdout, "  unfused (Listing 1):        %10.2f GB\n", gb(lb.MemoryUnfused(*n, *spatial)))
	fmt.Fprintf(stdout, "  fused 12/34 (Listing 2):    %10.2f GB\n", gb(lb.MemoryFused12_34(*n, *spatial)))
	for _, tl := range []int{1, 4, 16} {
		if tl <= *n {
			fmt.Fprintf(stdout, "  fully fused Tl=%-3d (Eq 8): %10.2f GB\n", tl, gb(lb.MemoryFused1234Inner(*n, *spatial, tl)))
		}
	}
	fmt.Fprintf(stdout, "  fused/unfused flop overhead (Section 7.4): %.3fx\n", lb.FusedFlopOverhead(*n))

	if memBytes > 0 {
		adv := fourindex.Advise(*n, *spatial, memBytes)
		fmt.Fprintf(stdout, "\nAdvice for %.2f GB aggregate memory (Section 7.4 hybrid):\n", float64(memBytes)/1e9)
		fmt.Fprintf(stdout, "  scheme: %s\n", adv.Scheme)
		fmt.Fprintf(stdout, "  reason: %s\n", adv.Reason)
		if adv.Scheme == "fused" {
			fmt.Fprintf(stdout, "  fused-loop tile width: %d (footprint %.2f GB)\n",
				adv.RequiredTileL, float64(adv.MemoryBytes)/1e9)
		}

		if localBytes > 0 {
			plan := lb.PlanHierarchy(*n, *spatial, memBytes, localBytes)
			fmt.Fprintf(stdout, "\nTwo-level hierarchy plan (Section 3):\n")
			for _, lv := range []lb.LevelPlan{plan.Outer, plan.Inner} {
				fmt.Fprintf(stdout, "  %-16s fast=%8.2f GB  config=%-8s I/O >= %.3g elements\n",
					lv.Level, float64(lv.FastBytes)/1e9, lv.Config.String(), float64(lv.IOBoundElements))
				fmt.Fprintf(stdout, "    %s\n", lv.Note)
			}
			if plan.TileL > 0 {
				fmt.Fprintf(stdout, "  outer fused-loop tile width: %d\n", plan.TileL)
			}
		}
	}
	return nil
}
