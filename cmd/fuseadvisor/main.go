// Command fuseadvisor prints the paper's lower-bound analysis (Sections
// 4-6) for a problem size: tensor sizes, the I/O lower bound of every
// fusion configuration with the Theorem 5.2 ordering, the fast-memory
// thresholds, and the Section 7.4 fuse/unfuse recommendation for a given
// aggregate memory.
//
// Example:
//
//	fuseadvisor -n 698 -s 8 -mem 1.4TB
package main

import (
	"flag"
	"fmt"
	"os"

	"fourindex"
	"fourindex/internal/lb"
	"fourindex/internal/sym"
	"fourindex/internal/units"
)

func main() {
	var (
		n       = flag.Int("n", 368, "orbital count")
		spatial = flag.Int("s", 8, "spatial symmetry order (power of two)")
		mem     = flag.String("mem", "", "aggregate physical memory, e.g. 110GB (empty: skip advice)")
		local   = flag.String("local", "", "per-process local memory, e.g. 4GB (with -mem: prints the Section 3 two-level plan)")
	)
	flag.Parse()

	sz := sym.ExactSizes(*n, *spatial)
	gb := func(words int64) float64 { return float64(words) * 8 / 1e9 }

	fmt.Printf("Four-index transform analysis: n = %d, spatial symmetry s = %d\n\n", *n, *spatial)
	fmt.Printf("Tensor sizes (Table 1, exact packed counts):\n")
	fmt.Printf("  %-4s %14s %10s\n", "", "elements", "GB")
	for _, row := range []struct {
		name string
		w    int64
	}{{"A", sz.A}, {"O1", sz.O1}, {"O2", sz.O2}, {"O3", sz.O3}, {"C", sz.C}} {
		fmt.Printf("  %-4s %14d %10.2f\n", row.name, row.w, gb(row.w))
	}

	fmt.Printf("\nFusion configurations ranked by I/O lower bound (Section 5.3):\n")
	fmt.Printf("  %-12s %16s %8s %s\n", "config", "I/O (elements)", "GB", "bound")
	for _, rc := range lb.RankConfigs(sz) {
		tight := "tight"
		if !rc.Tight {
			tight = "lower bound only"
		}
		fmt.Printf("  %-12s %16d %8.1f %s\n", rc.Config, rc.IO, gb(rc.IO), tight)
	}

	fmt.Printf("\nCapacity-vs-bound frontier (knees where each curve flattens):\n")
	fmt.Printf("  %-12s %16s %16s %16s\n", "config", "floor (elements)", "flat at S", "min memory")
	grid := lb.CapacityGrid(*n, *spatial, 0)
	for _, name := range []string{"op1/2/3/4", "op12/34", "op123/4", "op1234"} {
		c, err := lb.ConfigByName(name)
		if err != nil {
			fmt.Fprintln(os.Stderr, "fuseadvisor:", err)
			os.Exit(1)
		}
		cv := lb.ComputeCurve(c, *n, *spatial, grid)
		fmt.Printf("  %-12s %16d %16d %16d\n", cv.Config, cv.FloorElements, cv.FlatAtS, cv.MinMemoryElements)
	}

	n64 := int64(*n)
	fmt.Printf("\nFast-memory thresholds:\n")
	fmt.Printf("  single contraction tight (S >= n^2+n+1):     %d words\n", lb.SingleTightThreshold(n64))
	fmt.Printf("  pair fusion useful (S >= 3n^2+n+1):          %d words\n", lb.PairFusionThreshold(n64))
	fmt.Printf("  full reuse possible (S >= |C|, Thm 6.2):     %d words (%.2f GB)\n", sz.C, gb(sz.C))
	fmt.Printf("  Listing 7 sufficient (S >= |C| + 2n^3):      %d words\n", lb.FullReuseSufficientS(n64, sz.C))

	fmt.Printf("\nSchedule memory requirements:\n")
	fmt.Printf("  unfused (Listing 1):        %10.2f GB\n", gb(lb.MemoryUnfused(*n, *spatial)))
	fmt.Printf("  fused 12/34 (Listing 2):    %10.2f GB\n", gb(lb.MemoryFused12_34(*n, *spatial)))
	for _, tl := range []int{1, 4, 16} {
		if tl <= *n {
			fmt.Printf("  fully fused Tl=%-3d (Eq 8): %10.2f GB\n", tl, gb(lb.MemoryFused1234Inner(*n, *spatial, tl)))
		}
	}
	fmt.Printf("  fused/unfused flop overhead (Section 7.4): %.3fx\n", lb.FusedFlopOverhead(*n))

	if *mem != "" {
		bytes, err := units.ParseBytes(*mem)
		if err != nil {
			fmt.Fprintln(os.Stderr, "fuseadvisor:", err)
			os.Exit(1)
		}
		adv := fourindex.Advise(*n, *spatial, bytes)
		fmt.Printf("\nAdvice for %.2f GB aggregate memory (Section 7.4 hybrid):\n", float64(bytes)/1e9)
		fmt.Printf("  scheme: %s\n", adv.Scheme)
		fmt.Printf("  reason: %s\n", adv.Reason)
		if adv.Scheme == "fused" {
			fmt.Printf("  fused-loop tile width: %d (footprint %.2f GB)\n",
				adv.RequiredTileL, float64(adv.MemoryBytes)/1e9)
		}

		if *local != "" {
			lbytes, err := units.ParseBytes(*local)
			if err != nil {
				fmt.Fprintln(os.Stderr, "fuseadvisor:", err)
				os.Exit(1)
			}
			plan := lb.PlanHierarchy(*n, *spatial, bytes, lbytes)
			fmt.Printf("\nTwo-level hierarchy plan (Section 3):\n")
			for _, lv := range []lb.LevelPlan{plan.Outer, plan.Inner} {
				fmt.Printf("  %-16s fast=%8.2f GB  config=%-8s I/O >= %.3g elements\n",
					lv.Level, float64(lv.FastBytes)/1e9, lv.Config.String(), float64(lv.IOBoundElements))
				fmt.Printf("    %s\n", lv.Note)
			}
			if plan.TileL > 0 {
				fmt.Printf("  outer fused-loop tile width: %d\n", plan.TileL)
			}
		}
	}
}
