package main

import (
	"strings"
	"testing"
)

// TestRunTable drives the command body over valid and invalid
// invocations: valid runs print the full analysis, invalid ones error
// before the first byte of output.
func TestRunTable(t *testing.T) {
	cases := []struct {
		name    string
		args    []string
		wantErr string   // substring of the error, "" = success
		wantOut []string // substrings that must appear on success
	}{
		{
			name: "defaults",
			args: nil,
			wantOut: []string{
				"Four-index transform analysis: n = 368",
				"Fusion configurations ranked",
				"op1234",
				"Fast-memory thresholds",
			},
		},
		{
			name: "with advice and plan",
			args: []string{"-n", "100", "-s", "4", "-mem", "8GB", "-local", "1GB"},
			wantOut: []string{
				"Advice for 8.00 GB",
				"Two-level hierarchy plan",
			},
		},
		{name: "zero n", args: []string{"-n", "0"}, wantErr: "-n must be positive"},
		{name: "negative n", args: []string{"-n", "-4"}, wantErr: "-n must be positive"},
		{name: "zero s", args: []string{"-s", "0"}, wantErr: "-s must be at least 1"},
		{name: "bad mem", args: []string{"-mem", "lots"}, wantErr: "lots"},
		{name: "bad local", args: []string{"-mem", "8GB", "-local", "??"}, wantErr: "??"},
		{name: "local without mem", args: []string{"-local", "1GB"}, wantErr: "-local needs -mem"},
		{name: "stray argument", args: []string{"extra"}, wantErr: `unexpected argument "extra"`},
		{name: "malformed flag", args: []string{"-n", "abc"}, wantErr: "invalid value"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var out strings.Builder
			err := run(tc.args, &out)
			if tc.wantErr != "" {
				if err == nil || !strings.Contains(err.Error(), tc.wantErr) {
					t.Fatalf("run(%v) error = %v, want substring %q", tc.args, err, tc.wantErr)
				}
				if out.Len() != 0 {
					t.Errorf("run(%v) printed %d bytes before failing:\n%s", tc.args, out.Len(), out.String())
				}
				return
			}
			if err != nil {
				t.Fatalf("run(%v): %v", tc.args, err)
			}
			for _, want := range tc.wantOut {
				if !strings.Contains(out.String(), want) {
					t.Errorf("run(%v) output missing %q", tc.args, want)
				}
			}
		})
	}
}
