package fourindex

import (
	"bytes"
	"os"
	"testing"
)

// TestFrontierGolden pins the checked-in FRONTIER_fouridx.json
// byte-for-byte: recomputing the frontier from the default problems
// must reproduce the artifact exactly. A mismatch means either the
// frontier engine changed (regenerate with `make frontier`) or the
// emission path lost determinism.
func TestFrontierGolden(t *testing.T) {
	want, err := os.ReadFile("FRONTIER_fouridx.json")
	if err != nil {
		t.Fatal(err)
	}
	var got bytes.Buffer
	if err := RunFrontier(nil).Encode(&got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(want, got.Bytes()) {
		t.Fatalf("FRONTIER_fouridx.json is stale: checked-in %d bytes, recomputed %d bytes differ (regenerate with `make frontier`)",
			len(want), got.Len())
	}
}

// TestFrontierGoldenKnees cross-checks the checked-in artifact's knees
// against the closed-form thresholds: each schedule's curve must
// flatten exactly at its configuration's threshold capacity, and the
// thresholds themselves must be grid points.
func TestFrontierGoldenKnees(t *testing.T) {
	f, err := os.Open("FRONTIER_fouridx.json")
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	rep, err := DecodeFrontierReport(f)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Problems) == 0 {
		t.Fatal("artifact has no problems")
	}
	for _, pf := range rep.Problems {
		th := KneesFor(pf.N, pf.Sym)
		if th != pf.Thresholds {
			t.Errorf("%s: artifact thresholds %+v differ from closed form %+v", pf.Name, pf.Thresholds, th)
		}
		for _, sf := range pf.Schedules {
			var want int64
			switch sf.Config {
			case "op1/2/3/4", "op123/4":
				want = th.SingleTight
			case "op12/34":
				want = th.PairFusion
			case "op1234":
				want = th.FullReuse
			default:
				t.Errorf("%s: unexpected config %q in artifact", pf.Name, sf.Config)
				continue
			}
			if sf.FlatAtS != want {
				t.Errorf("%s/%s: curve flattens at S=%d, closed-form threshold is %d",
					pf.Name, sf.Scheme, sf.FlatAtS, want)
			}
		}
	}
}
