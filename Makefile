# Local developer workflow, mirrored exactly by .github/workflows/ci.yml
# so "it passed make" and "it passed CI" mean the same thing.

GO ?= go

.PHONY: all build test race lint vet ci

all: build test vet lint

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# race runs the tier-1 race gate: the full ga + fourindex suites under
# the race detector, plus the concurrency stress tests repeated to give
# interleavings a chance to differ.
race:
	$(GO) test -race ./internal/ga/... ./internal/fourindex/...
	$(GO) test -race -count=5 -run 'TestStress' ./internal/ga/

# lint runs the project's own analyzer suite (see internal/analysis).
lint:
	$(GO) run ./cmd/fouridxlint ./...

vet:
	$(GO) vet ./...

ci: build test vet lint race
