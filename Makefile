# Local developer workflow, mirrored exactly by .github/workflows/ci.yml
# so "it passed make" and "it passed CI" mean the same thing.

GO ?= go

.PHONY: all build test race lint lint-self lint-fixtures vet golden chains-golden chaos bench bench-smoke gemm-calibrate frontier frontier-golden serve-smoke ci

all: build test vet lint

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# race runs the tier-1 race gate: the full ga + fourindex suites plus
# the concurrent job server under the race detector, plus the
# concurrency stress tests repeated to give interleavings a chance to
# differ.
race:
	$(GO) test -race ./internal/ga/... ./internal/fourindex/... ./internal/serve/...
	$(GO) test -race -count=5 -run 'TestStress' ./internal/ga/

# lint runs the project's own analyzer suite (see internal/analysis).
lint:
	$(GO) run ./cmd/fouridxlint ./...

# lint-self points the linter at its own analysis layer: the checkers
# must satisfy the disciplines they enforce (deterministic diagnostics,
# documented exports, clean error flow).
lint-self:
	$(GO) run ./cmd/fouridxlint ./internal/analysis/... ./cmd/fouridxlint

# lint-fixtures runs every analyzer's `// want` fixture suite plus the
# cfg/dataflow engine and loader tests.
lint-fixtures:
	$(GO) test -count=1 ./internal/analysis/...

vet:
	$(GO) vet ./...

# golden pins the Chrome trace export byte-for-byte; regenerate with
# `go test ./internal/trace -update` after an intentional schedule or
# cost-model change.
golden:
	$(GO) test -count=1 -run 'TestChromeTraceGolden' ./internal/trace/

# chains-golden pins the generalized bound engine to the hand-derived
# four-index closed forms bit-for-bit (thresholds, per-op bounds,
# config enumeration order, I/O floors, memory floors, capacity grids,
# full frontier curves) and checks the non-four-index chains end to end
# (see DESIGN.md §13).
chains-golden:
	$(GO) test -count=1 ./internal/lb/chain/ ./internal/lb/
	$(GO) test -count=1 -run 'TestAnalyzeChain|TestWriteChainReport|TestChainScenarios' ./internal/fourindex/

# chaos runs the seeded fault-plan suite under the race detector: every
# schedule against 50 random fault plans (bitwise-identical C or typed
# terminal error), l-slab checkpoint resume after an injected crash, and
# the hybrid driver's degradation path (see internal/fourindex/chaos_test.go
# and internal/faults).
chaos:
	$(GO) test -race -run 'Chaos' ./internal/fourindex/
	$(GO) test -race ./internal/faults/

# bench regenerates the checked-in benchmark baseline: the full matrix
# of {schedule} x {execute sizes, cost molecules} x {GOMAXPROCS} with
# wall-clock measurement (see internal/perf and README "Benchmarking").
bench:
	$(GO) run ./cmd/fouridx bench -o BENCH_fouridx.json -v

# bench-smoke runs the CI subset of the matrix and gates it against the
# checked-in baseline: deterministic accounting must match within 15%,
# wall times within 15% after median-ratio machine normalisation.
bench-smoke:
	$(GO) run ./cmd/fouridx bench -smoke -o /tmp/bench_smoke.json -baseline BENCH_fouridx.json -tolerance 0.15

# gemm-calibrate runs only the Strassen crossover sweep: the blocked
# classical kernel against one level of Strassen-Winograd recursion
# over the size ladder, printing this machine's crossover pick. The
# full `make bench` records the same sweep in the baseline artifact.
gemm-calibrate:
	$(GO) run ./cmd/fouridx bench -calibrate

# frontier regenerates the checked-in capacity-vs-bound frontier
# artifact (see README "Autotuning" and DESIGN.md §11).
frontier:
	$(GO) run ./cmd/fouridx frontier -o FRONTIER_fouridx.json

# frontier-golden fails the build when the checked-in artifact is stale,
# then gates the frontier-driven tuner against the benchmark baseline:
# its pick must never be slower than the per-point best in
# BENCH_fouridx.json.
frontier-golden:
	$(GO) run ./cmd/fouridx frontier -check -o FRONTIER_fouridx.json -gate -baseline BENCH_fouridx.json

# serve-smoke exercises the fouridxd job server end to end through its
# real binary: admission (202 + 422 over budget), SIGTERM drain with
# checkpoint + queue persistence, and restart-resume with a
# bitwise-identical result (see README "Serving" and DESIGN.md §12).
serve-smoke:
	./scripts/serve_smoke.sh

ci: build test vet lint lint-self lint-fixtures golden chains-golden frontier-golden race chaos bench-smoke serve-smoke
