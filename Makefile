# Local developer workflow, mirrored exactly by .github/workflows/ci.yml
# so "it passed make" and "it passed CI" mean the same thing.

GO ?= go

.PHONY: all build test race lint vet golden ci

all: build test vet lint

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# race runs the tier-1 race gate: the full ga + fourindex suites under
# the race detector, plus the concurrency stress tests repeated to give
# interleavings a chance to differ.
race:
	$(GO) test -race ./internal/ga/... ./internal/fourindex/...
	$(GO) test -race -count=5 -run 'TestStress' ./internal/ga/

# lint runs the project's own analyzer suite (see internal/analysis).
lint:
	$(GO) run ./cmd/fouridxlint ./...

vet:
	$(GO) vet ./...

# golden pins the Chrome trace export byte-for-byte; regenerate with
# `go test ./internal/trace -update` after an intentional schedule or
# cost-model change.
golden:
	$(GO) test -count=1 -run 'TestChromeTraceGolden' ./internal/trace/

ci: build test vet lint golden race
