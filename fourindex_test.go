package fourindex

import (
	"testing"

	"fourindex/internal/sym"
)

// The façade must be usable exactly as the README shows.
func TestFacadeQuickstart(t *testing.T) {
	spec, err := NewSpec(10, 2, 42)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Transform(Hybrid, Options{
		Spec:  spec,
		Procs: 4,
		Mode:  ModeExecute,
		TileN: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.C == nil {
		t.Fatal("execute mode must return C")
	}
	want := ReferencePacked(spec)
	if d := sym.MaxAbsDiffC(res.C, want); d > 1e-9 {
		t.Errorf("facade transform wrong by %v", d)
	}
}

func TestFacadeSchemeNames(t *testing.T) {
	for _, s := range []Scheme{Unfused, Fused1234Pair, Recompute, FullyFused, FullyFusedInner, Hybrid, NWChemFused, Fused123} {
		got, err := SchemeByName(s.String())
		if err != nil || got != s {
			t.Errorf("SchemeByName(%q) = %v, %v", s.String(), got, err)
		}
	}
}

func TestFacadeAnalysis(t *testing.T) {
	ranked := RankFusionConfigs(64, 8)
	if ranked[0].Config.String() != "op1234" {
		t.Errorf("best fusion config = %s", ranked[0].Config)
	}
	sz := Sizes(64, 8)
	if !FullReusePossible(sz.C, sz.C) || FullReusePossible(sz.C-1, sz.C) {
		t.Error("FullReusePossible threshold wrong")
	}
	if FusionLemma(100, 100, 30) != 140 {
		t.Error("FusionLemma arithmetic wrong")
	}
	if DongarraMatmulLB(10, 10, 10, 100) <= 0 {
		t.Error("DongarraMatmulLB not positive")
	}
	adv := Advise(64, 1, UnfusedMemoryWords(64, 1)*8/2)
	if adv.Scheme != "fused" {
		t.Errorf("Advise under pressure = %s", adv.Scheme)
	}
}

func TestFacadeCatalog(t *testing.T) {
	if len(Molecules()) != 5 {
		t.Errorf("catalog size %d", len(Molecules()))
	}
	m, err := MoleculeByName("Uracil")
	if err != nil || m.Orbitals != 698 {
		t.Errorf("Uracil lookup: %v %v", m, err)
	}
	if _, err := MachineByName("B"); err != nil {
		t.Errorf("MachineByName: %v", err)
	}
	if SystemC().Nodes != 1440 {
		t.Error("SystemC nodes wrong")
	}
}

func TestFacadeFigure2Accessors(t *testing.T) {
	if len(Figure2()) != 17 {
		t.Errorf("Figure2 has %d points", len(Figure2()))
	}
	if _, err := RunFigure2("nope"); err == nil {
		t.Error("bad figure should error")
	}
}
