package fourindex_test

import (
	"fmt"

	"fourindex"
)

// Transform a small synthetic system with the hybrid driver and read an
// element of the packed-symmetric result.
func ExampleTransform() {
	spec, _ := fourindex.NewSpec(8, 1, 42)
	res, _ := fourindex.Transform(fourindex.Hybrid, fourindex.Options{
		Spec:  spec,
		Procs: 2,
		Mode:  fourindex.ModeExecute,
	})
	fmt.Println(res.ChosenScheme)
	fmt.Println(res.C.At(3, 1, 2, 0) == res.C.At(1, 3, 0, 2)) // permutation symmetry
	// Output:
	// unfused
	// true
}

// The Section 7.4 decision: once the intermediates no longer fit, the
// advisor switches from unfused to fused.
func ExampleAdvise() {
	need := fourindex.UnfusedMemoryWords(698, 8) * 8
	fmt.Println(fourindex.Advise(698, 8, need+1).Scheme)
	fmt.Println(fourindex.Advise(698, 8, need/2).Scheme)
	// Output:
	// unfused
	// fused
}

// Theorem 5.2's total order: full fusion has the least I/O, op12/34 is
// the best partial fusion.
func ExampleRankFusionConfigs() {
	ranked := fourindex.RankFusionConfigs(698, 8)
	fmt.Println(ranked[0].Config)
	fmt.Println(ranked[1].Config)
	// Output:
	// op1234
	// op12/34
}

// Theorem 6.2: full reuse of all intermediates is possible exactly when
// fast memory holds the output tensor.
func ExampleFullReusePossible() {
	sizeC := fourindex.Sizes(698, 8).C
	fmt.Println(fourindex.FullReusePossible(sizeC, sizeC))
	fmt.Println(fourindex.FullReusePossible(sizeC-1, sizeC))
	// Output:
	// true
	// false
}

// The paper's benchmark molecules and their unfused memory requirements
// (Section 8: "110 GB, 678 GB, 1.4 TB, 6.5 TB, and 12.1 TB").
func ExampleMolecules() {
	for _, m := range fourindex.Molecules() {
		fmt.Printf("%s: %d orbitals, %.2g TB unfused\n",
			m.Name, m.Orbitals, float64(m.UnfusedMemoryBytes())/1e12)
	}
	// Output:
	// Hyperpolar: 368 orbitals, 0.11 TB unfused
	// C60H20: 580 orbitals, 0.68 TB unfused
	// Uracil: 698 orbitals, 1.4 TB unfused
	// C40H56: 1023 orbitals, 6.6 TB unfused
	// Shell-Mixed: 1194 orbitals, 12 TB unfused
}
