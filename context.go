package fourindex

import (
	"context"

	ifx "fourindex/internal/fourindex"
	"fourindex/internal/perf"
)

// ErrCanceled is the typed error every context-aware entry point
// (TransformContext, TuneContext, TuneFrontierContext, RunBenchContext)
// wraps when its context is canceled or its deadline passes. Check with
// errors.Is. A canceled call never returns a partial result: transforms
// stop at the next l-slab or stage boundary (leaving their last
// checkpoint intact for resume), sweeps and benchmarks stop at the next
// simulate point.
var ErrCanceled = ifx.ErrCanceled

// TransformContext is Transform with cooperative cancellation: the
// schedules poll ctx at their l-slab and stage boundaries — the same
// places the fault checkpoints live — so a canceled run loses no
// checkpointed progress and a later call against the same checkpoint
// store resumes bitwise-identically.
func TransformContext(ctx context.Context, scheme Scheme, opt Options) (*Result, error) {
	return ifx.RunContext(ctx, scheme, opt)
}

// TuneContext is Tune with cooperative cancellation at every simulate
// point.
func TuneContext(ctx context.Context, opt Options, space TuneSpace) ([]TunePoint, error) {
	return ifx.TuneContext(ctx, opt, space)
}

// TuneFrontierContext is TuneFrontier with cooperative cancellation at
// every shortlist simulate point.
func TuneFrontierContext(ctx context.Context, opt Options, space TuneSpace, tolerance float64) (*FrontierTuneResult, error) {
	return ifx.TuneFrontierContext(ctx, opt, space, tolerance)
}

// RunBenchContext is RunBench with cooperative cancellation at every
// matrix point.
func RunBenchContext(ctx context.Context, cfg BenchConfig) (*BenchReport, error) {
	return perf.RunContext(ctx, cfg)
}
