package fourindex

import (
	"math"
	"testing"

	"fourindex/internal/sym"
)

// The complete quantum-chemistry pipeline as an integration test:
// SCF -> four-index transform (every schedule) -> MP2. All schedules
// must deliver the identical correlation energy from genuinely
// orthogonal SCF coefficients.
func TestPipelineSCFTransformMP2(t *testing.T) {
	const (
		n    = 12
		nOcc = 4
	)
	spec, err := NewSpec(n, 1, 31)
	if err != nil {
		t.Fatal(err)
	}
	hf, err := RHF(spec, nOcc, SCFOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !hf.Converged {
		t.Fatalf("SCF did not converge (%d iterations)", hf.Iterations)
	}
	moSpec, err := spec.WithB(hf.B)
	if err != nil {
		t.Fatal(err)
	}

	var first float64
	for i, scheme := range []Scheme{Unfused, Fused1234Pair, FullyFused, FullyFusedInner, NWChemFused, Recompute, Fused123} {
		res, err := Transform(scheme, Options{
			Spec: moSpec, Procs: 3, Mode: ModeExecute, TileN: 4, TileL: 3,
		})
		if err != nil {
			t.Fatalf("%v: %v", scheme, err)
		}
		e2, err := MP2Energy(res.C, hf.OrbitalEnergies, nOcc)
		if err != nil {
			t.Fatalf("%v: %v", scheme, err)
		}
		if i == 0 {
			first = e2
			if e2 >= 0 {
				t.Errorf("E2 = %v, expected negative", e2)
			}
			continue
		}
		if math.Abs(e2-first) > 1e-9 {
			t.Errorf("%v: E2 = %.12f differs from unfused %.12f", scheme, e2, first)
		}
	}
}

// With orthogonal SCF coefficients the transform is a true basis change:
// transforming with B and then with B^T (its inverse) restores the
// original integral tensor.
func TestPipelineBasisChangeRoundTrip(t *testing.T) {
	const n = 8
	spec, err := NewSpec(n, 1, 13)
	if err != nil {
		t.Fatal(err)
	}
	hf, err := RHF(spec, 2, SCFOptions{})
	if err != nil || !hf.Converged {
		t.Fatalf("SCF: %v (converged=%v)", err, hf.Converged)
	}

	// Forward transform with B.
	moSpec, err := spec.WithB(hf.B)
	if err != nil {
		t.Fatal(err)
	}
	fwd, err := Transform(Unfused, Options{Spec: moSpec, Procs: 2, Mode: ModeExecute, TileN: 4})
	if err != nil {
		t.Fatal(err)
	}

	// The AO tensor, packed, is what the round trip must restore.
	orig := sym.NewPackedA(n)
	for i := 0; i < n; i++ {
		for j := 0; j <= i; j++ {
			for k := 0; k < n; k++ {
				for l := 0; l <= k; l++ {
					orig.Set(spec.ComputeA(i, j, k, l), i, j, k, l)
				}
			}
		}
	}

	// Inverse transform: treat the MO tensor as the new "A" via a spec
	// whose integrals read from fwd.C, with B^T as the coefficient
	// matrix. We can't inject a tensor into a Spec, so apply the
	// inverse directly: back[i,j,k,l] = sum B[a,i] B[b,j] B[c,k] B[d,l]
	// C[a,b,c,d] — O(n^8) but tiny at n = 8.
	b := hf.B
	var maxDiff float64
	for i := 0; i < n; i++ {
		for j := 0; j <= i; j++ {
			for k := 0; k < n; k++ {
				for l := 0; l <= k; l++ {
					var v float64
					for a := 0; a < n; a++ {
						bai := b[a*n+i]
						if bai == 0 {
							continue
						}
						for bb := 0; bb < n; bb++ {
							w2 := bai * b[bb*n+j]
							for c := 0; c < n; c++ {
								w3 := w2 * b[c*n+k]
								if w3 == 0 {
									continue
								}
								for d := 0; d < n; d++ {
									v += w3 * b[d*n+l] * fwd.C.At(a, bb, c, d)
								}
							}
						}
					}
					if d := math.Abs(v - orig.At(i, j, k, l)); d > maxDiff {
						maxDiff = d
					}
				}
			}
		}
	}
	if maxDiff > 1e-8 {
		t.Errorf("basis-change round trip error %v", maxDiff)
	}
}
